"""Precision plumbing, per-stage profiling and the float32 fast path.

Three contracts from the batch-kernel performance work:

* **float64 is the golden mode** — the default precision everywhere;
  ``precision="float32"`` (or ``REPRO_FAST_MATH=1``) is opt-in, and
  even then every pipeline *output* is restored to float64 so
  downstream consumers never see a narrow dtype;
* **the fast path tracks the golden path** — float32 trial outcomes
  and dataset features stay within a small relative tolerance of the
  float64 reference (bitwise equality is explicitly *not* promised);
* **profiling is observable and optional** — a
  :class:`~repro.sim.pipeline.StageProfile` attached to a run
  attributes wall time to every named stage in whichever mode
  executed, and runs without one take no timestamps at all.
"""

import numpy as np
import pytest

from repro.errors import ExperimentError
from repro.experiments._emissions import ATTACKER_POSITION, single_full
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.pipeline import (
    StageProfile,
    build_pipeline,
    resolve_precision,
)
from repro.sim.scenario import Scenario, VictimDevice


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google",), seed=91)


@pytest.fixture(scope="module")
def scenario():
    return Scenario(
        command="ok_google",
        attacker_position=ATTACKER_POSITION,
        victim_position=ATTACKER_POSITION.translated(2.0, 0.0, 0.0),
    )


@pytest.fixture(scope="module")
def group(scenario, phone_device):
    return TrialGroup(
        scenario,
        phone_device,
        EmissionSpec(single_full, ("ok_google", 5)),
        4,
    )


class TestResolvePrecision:
    def test_default_is_float64(self, monkeypatch):
        monkeypatch.delenv("REPRO_FAST_MATH", raising=False)
        assert resolve_precision(None) == "float64"

    def test_explicit_values_pass_through(self):
        assert resolve_precision("float64") == "float64"
        assert resolve_precision("float32") == "float32"

    @pytest.mark.parametrize("flag", ["1", "true", "yes", "on", "ON"])
    def test_env_flag_enables_fast_math(self, monkeypatch, flag):
        monkeypatch.setenv("REPRO_FAST_MATH", flag)
        assert resolve_precision(None) == "float32"

    @pytest.mark.parametrize("flag", ["0", "false", "off", ""])
    def test_env_flag_off_values(self, monkeypatch, flag):
        monkeypatch.setenv("REPRO_FAST_MATH", flag)
        assert resolve_precision(None) == "float64"

    def test_kwarg_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAST_MATH", "1")
        assert resolve_precision("float64") == "float64"

    def test_unknown_precision_rejected(self):
        with pytest.raises(ExperimentError, match="precision"):
            resolve_precision("float16")

    def test_engine_resolves_once(self, monkeypatch):
        # Workers must compute the way the engine was configured, not
        # the way their environment happens to look at task time.
        monkeypatch.setenv("REPRO_FAST_MATH", "1")
        engine = ExperimentEngine(jobs=1, batch=True)
        assert engine.precision == "float32"
        monkeypatch.delenv("REPRO_FAST_MATH")
        assert engine.precision == "float32"


class TestFloat32FastPath:
    @pytest.fixture(scope="class")
    def outcomes(self, scenario, phone_device, group):
        results = {}
        for precision in ("float64", "float32"):
            pipeline = build_pipeline(
                scenario, phone_device, precision=precision
            )
            ctx = pipeline.context(group.resolve_sources())
            rngs = np.random.default_rng(7).spawn(group.n_trials)
            results[precision] = pipeline.run_trials(
                ctx, rngs, batch=True
            )
        return results

    def test_outputs_restored_to_float64(self, outcomes):
        for outcome in outcomes["float32"]:
            assert outcome.recording.samples.dtype == np.float64

    def test_decisions_match_golden_mode(self, outcomes):
        for fast, golden in zip(
            outcomes["float32"], outcomes["float64"]
        ):
            assert fast.success == golden.success
            assert fast.recognized_command == golden.recognized_command

    def test_recordings_within_tolerance(self, outcomes):
        # The recordings are post-ADC, so float32 rounding upstream can
        # flip individual samples across a quantization boundary: the
        # honest bound is a few LSBs of absolute error, not a tight
        # relative one.
        for fast, golden in zip(
            outcomes["float32"], outcomes["float64"]
        ):
            reference = golden.recording.samples
            levels = np.unique(np.abs(np.diff(np.sort(reference))))
            lsb = float(levels[levels > 0][0])
            error = np.max(
                np.abs(fast.recording.samples - reference)
            )
            assert error <= 2.0 * lsb

    def test_scalar_and_batch_fast_paths_agree(
        self, scenario, phone_device, group
    ):
        results = {}
        for batch in (False, True):
            pipeline = build_pipeline(
                scenario, phone_device, precision="float32"
            )
            ctx = pipeline.context(group.resolve_sources())
            rngs = np.random.default_rng(7).spawn(group.n_trials)
            results[batch] = pipeline.run_trials(
                ctx, rngs, batch=batch
            )
        for scalar, batched in zip(results[False], results[True]):
            assert scalar.success == batched.success
            assert scalar.distance == batched.distance
            assert np.array_equal(
                scalar.recording.samples, batched.recording.samples
            )

    def test_trace_features_track_float64(self):
        # The satellite property: dataset features computed on the
        # fast path stay within a bounded relative error of the
        # float64 golden numbers.
        from repro.defense.dataset import DatasetConfig, build_dataset

        config = DatasetConfig(
            commands=("ok_google",),
            distances_m=(1.0,),
            n_trials=2,
            attacker_kind="single_full",
            seed=3,
        )
        golden = build_dataset(config, precision="float64").features
        fast = build_dataset(config, precision="float32").features
        assert golden.dtype == np.float64
        assert fast.dtype == np.float64
        scale = np.maximum(np.abs(golden), 1e-9)
        assert np.max(np.abs(fast - golden) / scale) < 1e-2


class TestStageProfile:
    def test_attributes_both_modes(self, scenario, phone_device, group):
        pipeline = build_pipeline(scenario, phone_device)
        ctx = pipeline.context(group.resolve_sources())
        profile = StageProfile()
        for batch in (False, True):
            rngs = np.random.default_rng(7).spawn(group.n_trials)
            pipeline.run_trials(
                ctx, rngs, batch=batch, profile=profile
            )
        modes = {mode for mode, _ in profile.timings}
        assert modes == {"scalar", "batch"}
        for mode in modes:
            stages = [
                stage
                for (timing_mode, stage) in profile.timings
                if timing_mode == mode
            ]
            assert stages == list(pipeline.stage_names())

    def test_trial_counts_and_rows(self, scenario, phone_device, group):
        pipeline = build_pipeline(scenario, phone_device)
        ctx = pipeline.context(group.resolve_sources())
        profile = StageProfile()
        rngs = np.random.default_rng(7).spawn(group.n_trials)
        pipeline.run_trials(ctx, rngs, batch=True, profile=profile)
        rows = profile.as_rows()
        assert all(row["mode"] == "batch" for row in rows)
        assert all(row["trials"] == group.n_trials for row in rows)
        assert all(row["seconds"] >= 0.0 for row in rows)
        assert profile.total_seconds("batch") == pytest.approx(
            sum(row["seconds"] for row in rows)
        )
        rendered = profile.render()
        for row in rows:
            assert row["stage"] in rendered

    def test_profile_accumulates_across_runs(
        self, scenario, phone_device, group
    ):
        pipeline = build_pipeline(scenario, phone_device)
        ctx = pipeline.context(group.resolve_sources())
        profile = StageProfile()
        for _ in range(2):
            rngs = np.random.default_rng(7).spawn(group.n_trials)
            pipeline.run_trials(
                ctx, rngs, batch=True, profile=profile
            )
        for (_, _), timing in profile.timings.items():
            assert timing.trials == 2 * group.n_trials


class TestRecognizeBatch:
    def test_bitwise_equal_to_scalar(self, scenario, phone_device, group):
        pipeline = build_pipeline(scenario, phone_device)
        ctx = pipeline.context(group.resolve_sources())
        rngs = np.random.default_rng(11).spawn(6)
        scalar = [pipeline.run_scalar(ctx, rng) for rng in rngs]
        recognizer = phone_device.recognizer
        recordings = [outcome.recording for outcome in scalar]
        batched = recognizer.recognize_batch(recordings)
        for outcome, result in zip(scalar, batched):
            assert result.command == outcome.recognized_command
            assert result.distance == outcome.distance
