"""Unit and property tests for the declarative trial pipeline.

Three groups of guarantees:

* **stage ordering** — :func:`build_pipeline` declares the canonical
  list (transmit -> motion-gain -> [interference] -> ambient ->
  microphone -> adc -> recognize), conditionally shaped by the
  scenario's data and the caller's options, and there is no second
  statement of that order anywhere;
* **BatchSupport folding** — whether a pipeline may take the batched
  path is the fold of its stages' verdicts: the first stage lacking a
  batch kernel, or refusing at construction time, decides and its
  reason survives to the caller;
* **executor equivalence** — for *arbitrary* stage lists (hypothesis:
  random compositions of deterministic and draw-consuming stages) the
  batched executor reproduces the scalar walk bitwise, at every trial
  count and chunk size, because both fold the same stages.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ExperimentError
from repro.experiments._emissions import single_full
from repro.hardware.microphone import Microphone
from repro.sim.cache import EmissionCache
from repro.sim.engine import EmissionSpec
from repro.sim.pipeline import (
    BatchSupport,
    Stage,
    TrialContext,
    TrialPipeline,
    build_pipeline,
    level_stage,
)
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import VictimDevice
from repro.sim.spec import get_scenario


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google",), seed=91)


@pytest.fixture(scope="module")
def emission_sources():
    return list(EmissionSpec(single_full, ("ok_google", 5)).sources())


class TestStageOrdering:
    def test_free_field_stage_list(self, phone_device):
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        pipeline = build_pipeline(scenario, phone_device)
        assert pipeline.stage_names() == (
            "transmit",
            "motion-gain",
            "ambient",
            "microphone",
            "adc",
            "recognize",
        )

    def test_interference_scene_inserts_interference_stage(
        self, phone_device
    ):
        scenario = get_scenario("tv_interference").build("ok_google", 2.0)
        pipeline = build_pipeline(scenario, phone_device)
        assert pipeline.stage_names() == (
            "transmit",
            "motion-gain",
            "interference",
            "ambient",
            "microphone",
            "adc",
            "recognize",
        )

    def test_recording_pipeline_ends_at_the_adc(self, phone_device):
        scenario = get_scenario("living_room").build("ok_google", 2.0)
        pipeline = build_pipeline(
            scenario, phone_device.microphone, recognize=False
        )
        assert pipeline.stage_names()[-1] == "adc"
        assert "recognize" not in pipeline.stage_names()

    def test_gain_stage_inserted_after_transmit(self, phone_device):
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        pipeline = build_pipeline(
            scenario,
            phone_device.microphone,
            recognize=False,
            gain_stage=level_stage(55.0, 68.0, 60.0),
        )
        names = pipeline.stage_names()
        assert names.index("talker-level") == names.index("transmit") + 1

    def test_bare_microphone_cannot_recognize(self, phone_device):
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        with pytest.raises(ExperimentError, match="cannot recognise"):
            build_pipeline(scenario, phone_device.microphone)

    def test_duplicate_stage_names_rejected(self):
        stage = Stage(name="x", scalar=lambda ctx, v, rng: v)
        with pytest.raises(ExperimentError, match="unique"):
            TrialPipeline([stage, stage])

    def test_empty_stage_list_rejected(self):
        with pytest.raises(ExperimentError, match="at least one"):
            TrialPipeline([])


class TestBatchSupportFold:
    def test_stock_pipeline_fully_batchable(self, phone_device):
        scenario = get_scenario("living_room").build("ok_google", 2.0)
        support = build_pipeline(scenario, phone_device).batch_support()
        assert support
        assert support.reason is None

    def test_stage_without_batch_kernel_refuses_with_name(self):
        stages = [
            Stage(
                name="ok",
                scalar=lambda ctx, v, rng: 1.0,
                batch=lambda ctx, v, rngs: [1.0] * len(rngs),
            ),
            Stage(name="scalar-only", scalar=lambda ctx, v, rng: v),
        ]
        support = TrialPipeline(stages).batch_support()
        assert not support
        assert "scalar-only" in support.reason
        assert "no batch kernel" in support.reason

    def test_first_refusal_wins(self):
        stages = [
            Stage(
                name="refused-early",
                scalar=lambda ctx, v, rng: v,
                batch=lambda ctx, v, rngs: v,
                support=BatchSupport.refused("early reason"),
            ),
            Stage(name="refused-late", scalar=lambda ctx, v, rng: v),
        ]
        support = TrialPipeline(stages).batch_support()
        assert support.reason == "early reason"

    def test_subclassed_microphone_collapses_to_record_stage(
        self, phone_device
    ):
        class _CustomMicrophone(Microphone):
            pass

        scenario = get_scenario("free_field").build("ok_google", 2.0)
        device = VictimDevice(
            name="custom",
            microphone=_CustomMicrophone(phone_device.microphone.config),
            recognizer=phone_device.recognizer,
        )
        pipeline = build_pipeline(scenario, device)
        assert "record" in pipeline.stage_names()
        assert "adc" not in pipeline.stage_names()
        support = pipeline.batch_support()
        assert not support
        assert "_CustomMicrophone" in support.reason

    def test_supports_batch_is_a_verdict_even_when_unenrolled(
        self, phone_device, emission_sources
    ):
        """Batchability and runnability are separate questions."""
        from repro.sim.engine import TrialGroup
        from repro.sim.batch import run_group_batch, supports_batch

        # phone_device only enrolled "ok_google"; the group can never
        # run, but supports_batch must still answer, as it always has.
        scenario = get_scenario("free_field").build("alexa", 2.0)
        group = TrialGroup(scenario, phone_device, emission_sources, 2)
        support = supports_batch(group)
        assert support
        assert support.reason is None
        # Running it is what fails, with the enrollment message.
        with pytest.raises(ExperimentError, match="no template"):
            run_group_batch(group, np.random.default_rng(0).spawn(2))

    def test_fallback_inside_run_trials_matches_scalar(
        self, phone_device, emission_sources
    ):
        """batch=True on a scalar-only pipeline silently walks scalar."""
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        reference = build_pipeline(scenario, phone_device)
        # Same stage list, minus every batch kernel.
        crippled = TrialPipeline(
            [
                Stage(name=stage.name, scalar=stage.scalar)
                for stage in reference.stages
            ],
        )
        ctx = reference.context(emission_sources)
        rngs_a = np.random.default_rng(3).spawn(3)
        rngs_b = np.random.default_rng(3).spawn(3)
        batched = crippled.run_trials(ctx, rngs_a, batch=True)
        scalar = [reference.run_scalar(ctx, rng) for rng in rngs_b]
        for x, y in zip(batched, scalar):
            assert x.distance == y.distance
            assert np.array_equal(
                x.recording.samples, y.recording.samples
            )


class TestInvariantPrecompute:
    def test_interference_bed_cached_and_bounded(
        self, phone_device, emission_sources
    ):
        scenario = get_scenario("tv_interference").build("ok_google", 2.0)
        pipeline = build_pipeline(scenario, phone_device)
        assert isinstance(pipeline.invariants, EmissionCache)
        assert pipeline.invariants.max_entries <= 8  # bounded
        ctx_a = pipeline.context(emission_sources)
        ctx_b = pipeline.context(emission_sources)
        # One transmission of the bed, shared by every later context.
        assert pipeline.invariants.stats.misses == 1
        assert pipeline.invariants.stats.hits == 1
        assert ctx_a.clean_interference is ctx_b.clean_interference

    def test_runner_shares_the_bounded_cache(self, phone_device):
        scenario = get_scenario("tv_interference").build("ok_google", 2.0)
        runner = ScenarioRunner(scenario, phone_device)
        assert runner.pipeline.invariants.max_entries <= 8

    def test_free_field_context_skips_the_bed(
        self, phone_device, emission_sources
    ):
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        pipeline = build_pipeline(scenario, phone_device)
        ctx = pipeline.context(emission_sources)
        assert ctx.clean_interference is None
        assert len(pipeline.invariants) == 0

    def test_empty_sources_rejected(self, phone_device):
        scenario = get_scenario("free_field").build("ok_google", 2.0)
        pipeline = build_pipeline(scenario, phone_device)
        with pytest.raises(ExperimentError, match="at least one source"):
            pipeline.context([])

    def test_synthetic_pipeline_has_no_context(self):
        pipeline = TrialPipeline(
            [Stage(name="x", scalar=lambda ctx, v, rng: 0.0)]
        )
        with pytest.raises(ExperimentError, match="context builder"):
            pipeline.context([object()])


# ----------------------------------------------------------------------
# Executor equivalence on randomized stage lists
# ----------------------------------------------------------------------

_BASE = np.linspace(-1.0, 1.0, 64)


def _inject() -> Stage:
    return Stage(
        name="inject",
        scalar=lambda ctx, v, rng: _BASE.copy(),
        batch=lambda ctx, v, rngs: np.tile(_BASE, (len(rngs), 1)),
    )


def _scale(index: int, factor: float) -> Stage:
    return Stage(
        name=f"scale-{index}",
        scalar=lambda ctx, v, rng: v * factor,
        batch=lambda ctx, v, rngs: v * factor,
    )


def _offset(index: int, amount: float) -> Stage:
    return Stage(
        name=f"offset-{index}",
        scalar=lambda ctx, v, rng: v + amount,
        batch=lambda ctx, v, rngs: v + amount,
    )


def _noise(index: int) -> Stage:
    """A draw-consuming stage: one normal vector per trial generator."""

    def scalar(ctx, v, rng):
        return v + rng.normal(0.0, 1.0, v.shape[-1])

    def batch(ctx, v, rngs):
        out = np.empty_like(v)
        for row, rng in enumerate(rngs):
            out[row] = v[row] + rng.normal(0.0, 1.0, v.shape[-1])
        return out

    return Stage(name=f"noise-{index}", scalar=scalar, batch=batch)


def _build_random_stages(spec: list[tuple[str, float]]) -> list[Stage]:
    stages = [_inject()]
    for index, (kind, parameter) in enumerate(spec):
        if kind == "scale":
            stages.append(_scale(index, parameter))
        elif kind == "offset":
            stages.append(_offset(index, parameter))
        else:
            stages.append(_noise(index))
    return stages


class TestExecutorEquivalence:
    @given(
        spec=st.lists(
            st.tuples(
                st.sampled_from(["scale", "offset", "noise"]),
                st.floats(
                    min_value=-2.0,
                    max_value=2.0,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            min_size=0,
            max_size=6,
        ),
        n_trials=st.integers(min_value=1, max_value=10),
        chunk_trials=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_batch_executor_bitwise_equals_scalar(
        self, spec, n_trials, chunk_trials, seed
    ):
        """Scalar walk == chunked batch walk, for any stage list."""
        pipeline = TrialPipeline(_build_random_stages(spec))
        ctx = TrialContext(clean_attack=None)
        scalar_rngs = np.random.default_rng(seed).spawn(n_trials)
        batch_rngs = np.random.default_rng(seed).spawn(n_trials)
        scalar = [
            pipeline.run_scalar(ctx, rng) for rng in scalar_rngs
        ]
        batched = pipeline.run_trials(
            ctx, batch_rngs, batch=True, chunk_trials=chunk_trials
        )
        assert len(batched) == n_trials
        for row, reference in zip(batched, scalar):
            assert np.array_equal(row, reference)

    def test_run_trials_rejects_empty_generators(self):
        pipeline = TrialPipeline([_inject()])
        with pytest.raises(ExperimentError, match=">= 1"):
            pipeline.run_trials(TrialContext(None), [])

    def test_run_trials_rejects_bad_chunking(self):
        pipeline = TrialPipeline([_inject()])
        with pytest.raises(ExperimentError, match="chunk_trials"):
            pipeline.run_trials(
                TrialContext(None),
                np.random.default_rng(0).spawn(2),
                chunk_trials=0,
            )

    def test_final_stage_must_produce_rows(self):
        pipeline = TrialPipeline(
            [
                Stage(
                    name="broken",
                    scalar=lambda ctx, v, rng: 1.0,
                    batch=lambda ctx, v, rngs: 1.0,  # not per-trial
                )
            ]
        )
        with pytest.raises(ExperimentError, match="final batch stage"):
            pipeline.run_trials(
                TrialContext(None), np.random.default_rng(0).spawn(2)
            )

    def test_row_count_mismatch_rejected(self):
        pipeline = TrialPipeline(
            [
                Stage(
                    name="short",
                    scalar=lambda ctx, v, rng: 1.0,
                    batch=lambda ctx, v, rngs: [1.0],  # one row short
                )
            ]
        )
        with pytest.raises(ExperimentError, match="rows"):
            pipeline.run_trials(
                TrialContext(None), np.random.default_rng(0).spawn(2)
            )


class TestLevelStage:
    def test_inverted_range_rejected(self):
        with pytest.raises(ExperimentError, match="inverted"):
            level_stage(70.0, 60.0, 60.0)

    def test_capture_receives_levels_in_trial_order(self, phone_device):
        from repro.attack.baselines import AudiblePlaybackAttacker
        from repro.sim.spec import RIG_POSITION
        from repro.speech.commands import synthesize_command

        voice = synthesize_command(
            "ok_google", np.random.default_rng(0)
        )
        sources = list(
            AudiblePlaybackAttacker(RIG_POSITION).emit(voice).sources
        )
        scenario = get_scenario("free_field").build("ok_google", 1.0)
        captured_batch: list[float] = []
        captured_scalar: list[float] = []
        outcomes = {}
        for label, capture, batch in (
            ("batch", captured_batch, True),
            ("scalar", captured_scalar, False),
        ):
            pipeline = build_pipeline(
                scenario,
                phone_device.microphone,
                recognize=False,
                gain_stage=level_stage(
                    55.0, 68.0, 60.0, capture=capture
                ),
            )
            outcomes[label] = pipeline.run_trials(
                pipeline.context(sources),
                np.random.default_rng(7).spawn(4),
                batch=batch,
            )
        assert captured_batch == captured_scalar
        assert len(captured_batch) == 4
        assert all(55.0 <= spl <= 68.0 for spl in captured_batch)
        for x, y in zip(outcomes["batch"], outcomes["scalar"]):
            assert np.array_equal(x.samples, y.samples)
