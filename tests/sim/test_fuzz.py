"""Generated environments and their differential oracle.

The fuzzer (:mod:`repro.sim.fuzz`) replaces curated expected outputs
with invariants that must hold for *any* environment it composes:

* **seed stability** — ``generate_scenario(seed)`` is a pure function
  of the seed: identical field-for-field across repeated calls and
  across a subprocess boundary (the engine's workers and the shard
  subprocesses receive only the ``random:<seed>`` string);
* **batch vs scalar** — the vectorized trial kernel reproduces the
  scalar per-trial loop bitwise in every generated environment, and
  ``supports_batch`` never refuses one;
* **jobs determinism** — fanning a generated scenario over a worker
  pool changes nothing, byte for byte;
* **guard parity** — the streaming guard's verdict matches the
  offline guard exactly in a generated environment;
* **shard digests** — partitioning the fleet over a generated
  scenario merges to the unsharded digest.

Plus unit coverage for the ``random:<seed>`` parser, the registry
error paths and the grammar's validity-by-construction bounds. The
``FUZZ_EXAMPLES`` environment variable scales the property example
counts (CI's fuzz-smoke job raises it; the default keeps local runs
fast).
"""

from __future__ import annotations

import dataclasses
import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings

import repro
from differential import outcomes_identical
from strategies import fuzz_seeds
from repro.defense.guard import GuardedVoiceAssistant
from repro.errors import ExperimentError
from repro.experiments._emissions import single_full
from repro.experiments.s1_streaming import train_detector
from repro.sim import fuzz
from repro.sim.batch import run_group_batch, supports_batch
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.fuzz import (
    DEFAULT_GRAMMAR,
    FUZZ_PREFIX,
    FuzzGrammar,
    FuzzSeedError,
    generate_scenario,
    is_fuzz_name,
    parse_fuzz_seed,
)
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import VictimDevice
from repro.sim.spec import (
    RIG_POSITION,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.stream.fleet import (
    FleetConfig,
    FleetSimulator,
    synthesize_utterances,
)
from repro.stream.guard import StreamingGuard
from repro.stream.shard import ShardAccumulator, plan_shards, run_shard

#: Property example budget — CI's fuzz-smoke job raises it, local
#: runs keep the default.
FUZZ_EXAMPLES = int(os.environ.get("FUZZ_EXAMPLES", "6"))

#: Deterministic seed sweep for the grammar-coverage assertions.
SCAN_SEEDS = range(120)

#: The generated environment pinned by the streaming/shard oracle —
#: free field with an interferer, a walking attacker and weather.
STREAM_FUZZ_NAME = f"{FUZZ_PREFIX}23"


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google",), seed=91)


@pytest.fixture(scope="module")
def emission_spec():
    return EmissionSpec(single_full, ("ok_google", 5))


def trial_rngs(n):
    """The exact per-trial streams the engine derives for one group."""
    (group_rng,) = np.random.default_rng(5).spawn(1)
    return group_rng.spawn(n)


class TestParsing:
    def test_prefix_detection(self):
        assert is_fuzz_name("random:7")
        assert is_fuzz_name("random:not_a_seed")  # reaches the parser
        assert not is_fuzz_name("free_field")
        assert not is_fuzz_name(7)

    def test_roundtrip(self):
        assert parse_fuzz_seed(f"{FUZZ_PREFIX}7") == 7
        assert parse_fuzz_seed(f"{FUZZ_PREFIX}0") == 0

    def test_error_is_both_valueerror_and_experimenterror(self):
        assert issubclass(FuzzSeedError, ValueError)
        assert issubclass(FuzzSeedError, ExperimentError)

    @pytest.mark.parametrize(
        "name",
        ["random:", "random:abc", "random:1.5", "random: 7", "random:-3"],
    )
    def test_malformed_seed_raises_clear_valueerror(self, name):
        with pytest.raises(ValueError, match="non-negative integer"):
            parse_fuzz_seed(name)
        with pytest.raises(ExperimentError):
            get_scenario(name)

    def test_non_fuzz_name_rejected_by_parser(self):
        with pytest.raises(ValueError, match="not a fuzz scenario"):
            parse_fuzz_seed("free_field")

    def test_negative_seed_rejected(self):
        with pytest.raises(FuzzSeedError, match="non-negative"):
            generate_scenario(-1)

    def test_get_scenario_resolves_fuzz_names(self):
        assert get_scenario("random:7") is generate_scenario(7)

    def test_unknown_name_lists_registry_and_mentions_fuzz(self):
        with pytest.raises(ExperimentError) as excinfo:
            get_scenario("underwater")
        message = str(excinfo.value)
        assert "free_field" in message
        assert "random:<seed>" in message

    def test_duplicate_registration_still_rejected(self):
        with pytest.raises(ExperimentError, match="already registered"):
            register_scenario(get_scenario("living_room"))

    def test_generated_specs_stay_out_of_the_registry(self):
        get_scenario("random:7")
        assert "random_7" not in scenario_names()


class TestSeedStability:
    def test_repeated_calls_share_the_cached_spec(self):
        assert generate_scenario(7) is generate_scenario(7)

    def test_equal_grammar_instances_hit_the_same_entry(self):
        assert generate_scenario(7, FuzzGrammar()) is generate_scenario(
            7, DEFAULT_GRAMMAR
        )

    def test_field_for_field_stable_across_cache_eviction(self):
        before = dataclasses.asdict(generate_scenario(7))
        fuzz._generate.cache_clear()
        after = dataclasses.asdict(generate_scenario(7))
        assert before == after

    def test_specs_pickle_roundtrip(self):
        for seed in (0, 7, 23):
            spec = generate_scenario(seed)
            assert pickle.loads(pickle.dumps(spec)) == spec

    @pytest.mark.parametrize("seed", [7, 42])
    def test_identical_across_a_subprocess_boundary(self, seed):
        """A worker that receives only the seed rebuilds the spec."""
        snippet = (
            "import dataclasses, json, sys\n"
            "from repro.sim.fuzz import generate_scenario\n"
            "spec = generate_scenario(int(sys.argv[1]))\n"
            "print(json.dumps(dataclasses.asdict(spec), sort_keys=True))\n"
        )
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        proc = subprocess.run(
            [sys.executable, "-c", snippet, str(seed)],
            capture_output=True,
            text=True,
            check=True,
            env=env,
        )
        local = json.dumps(
            dataclasses.asdict(generate_scenario(seed)), sort_keys=True
        )
        assert proc.stdout.strip() == local

    def test_spec_echoed_to_stderr_once_per_process(self, capsys):
        name = f"{FUZZ_PREFIX}987654"
        get_scenario(name)
        first = capsys.readouterr().err
        assert name in first and "ScenarioSpec" in first
        get_scenario(name)
        assert name not in capsys.readouterr().err


class TestGrammarCoverage:
    @pytest.fixture(scope="class")
    def scanned(self):
        return [generate_scenario(seed) for seed in SCAN_SEEDS]

    def test_every_grammar_axis_is_reachable(self, scanned):
        assert any(spec.room is not None for spec in scanned)
        assert any(spec.room is None for spec in scanned)
        assert any(len(spec.interference) == 0 for spec in scanned)
        assert any(len(spec.interference) >= 2 for spec in scanned)
        assert any(spec.trajectory is None for spec in scanned)
        assert any(
            spec.trajectory is not None and not spec.trajectory.legs
            for spec in scanned
        )
        assert any(
            spec.trajectory is not None and spec.trajectory.legs
            for spec in scanned
        )
        assert any(spec.weather is not None for spec in scanned)
        assert any(spec.weather is None for spec in scanned)
        assert {spec.device for spec in scanned} == {"phone", "echo"}

    def test_specs_stay_inside_grammar_bounds(self, scanned):
        g = DEFAULT_GRAMMAR

        def within(value, bounds):
            return bounds[0] <= value <= bounds[1]

        for spec in scanned:
            assert within(spec.ambient_noise_spl, g.ambient_noise_spl)
            assert spec.distance_m >= g.distance_m[0]
            assert spec.distance_m <= g.distance_m[1]
            if spec.room is not None:
                assert within(spec.room.length_m, g.room_length_m)
                assert within(spec.room.width_m, g.room_width_m)
                assert within(spec.room.height_m, g.room_height_m)
                assert within(spec.room.wall_absorption, g.wall_absorption)
            assert len(spec.interference) <= g.max_interferers
            for source in spec.interference:
                assert within(source.level_spl, g.interference_level_spl)
                assert within(source.duration_s, g.interference_duration_s)
                # Off the rig-victim axis, so range searches never
                # probe a victim position inside a loudspeaker.
                assert (
                    abs(source.y - RIG_POSITION.y)
                    >= g.victim_line_margin_m - 1e-9
                )
            if spec.trajectory is not None and spec.trajectory.legs:
                assert within(
                    len(spec.trajectory.legs),
                    (g.leg_count[0], g.leg_count[1]),
                )
            if spec.weather is not None:
                assert within(
                    spec.weather.relative_humidity, g.relative_humidity
                )
                assert within(spec.weather.pressure_kpa, g.pressure_kpa)

    def test_generated_rooms_always_host_rig_and_victim(self, scanned):
        for spec in scanned:
            built = spec.build("ok_google", spec.distance_m)
            if built.room is not None:
                assert built.room.contains(built.attacker_position)
                assert built.room.contains(built.victim_position)

    def test_names_and_descriptions_carry_the_seed(self, scanned):
        for seed, spec in zip(SCAN_SEEDS, scanned):
            assert spec.name == f"random_{seed}"
            assert f"seed {seed}" in spec.description

    def test_build_device_honours_the_drawn_preset(self, scanned):
        for spec in scanned[:20]:
            assert spec.build_device().name == spec.device


class TestDifferentialOracle:
    """Batch == scalar and jobs-invariance over the generated space."""

    @given(seed=fuzz_seeds)
    @settings(max_examples=FUZZ_EXAMPLES, deadline=None)
    def test_batch_bitwise_equals_scalar(
        self, seed, phone_device, emission_spec
    ):
        spec = generate_scenario(seed)
        scenario = spec.build("ok_google", spec.distance_m)
        group = TrialGroup(scenario, phone_device, emission_spec, 2)
        support = supports_batch(group)
        assert support and support.reason is None
        runner = ScenarioRunner(scenario, phone_device)
        sources = group.resolve_sources()
        scalar = [
            runner.run_trial(sources, rng) for rng in trial_rngs(2)
        ]
        batched = run_group_batch(group, trial_rngs(2))
        assert outcomes_identical(scalar, batched)

    def test_jobs_do_not_change_generated_outcomes(
        self, phone_device, emission_spec
    ):
        # Seed 7: free field, three simultaneous interferers and a
        # multi-leg trajectory — the maximal-draw path through the
        # per-trial stages.
        spec = generate_scenario(7)
        assert len(spec.interference) == 3
        assert spec.trajectory is not None and spec.trajectory.legs
        scenario = spec.build("ok_google", spec.distance_m)
        group = TrialGroup(scenario, phone_device, emission_spec, 3)
        batched = run_group_batch(group, trial_rngs(3))
        with ExperimentEngine(jobs=2) as engine:
            fanned = engine.run_trial_groups(
                [group], np.random.default_rng(5)
            )[0]
        assert outcomes_identical(batched, fanned)


class TestStreamingOracle:
    """Guard parity and shard digests in a generated environment."""

    @pytest.fixture(scope="class")
    def fuzz_detector(self):
        spec = get_scenario(STREAM_FUZZ_NAME)
        assert spec.interference and spec.trajectory is not None
        return train_detector(STREAM_FUZZ_NAME, seed=0, n_trials=2)

    def test_streaming_guard_matches_offline_guard(self, fuzz_detector):
        rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(2).spawn(2)
        ]
        recordings, recognizer = synthesize_utterances(
            STREAM_FUZZ_NAME,
            "ok_google",
            None,
            rngs,
            np.array([True, False]),
            voice_seed=0,
        )
        for recording in recordings:
            offline = GuardedVoiceAssistant(
                recognizer, fuzz_detector
            ).process(recording)
            guard = StreamingGuard(
                recognizer,
                fuzz_detector,
                recording.sample_rate,
                unit=recording.unit,
                gated=False,
            )
            online = guard.process_recording(recording, 977)
            assert online.executed_command == offline.executed_command
            assert online.vetoed == offline.vetoed
            assert (
                online.recognition.distance
                == offline.recognition.distance
            )
            assert (online.detection is None) == (
                offline.detection is None
            )
            if online.detection is not None:
                assert online.detection.score == offline.detection.score
                assert np.array_equal(
                    online.detection.features,
                    offline.detection.features,
                )

    def test_shard_partition_merges_to_unsharded_digest(
        self, fuzz_detector
    ):
        config = FleetConfig(
            n_streams=4,
            utterances_per_stream=1,
            attack_fraction=0.5,
            seed=9,
            workers=1,
            scenario=STREAM_FUZZ_NAME,
        )
        reference = FleetSimulator(fuzz_detector, config).run()
        accumulator = ShardAccumulator(config.n_streams)
        for task in plan_shards(
            fuzz_detector, config, partitions=[[2, 0], [3, 1]]
        ):
            accumulator.add(run_shard(task))
        merged = accumulator.report(config)
        assert merged.digest() == reference.digest()
        assert merged.digest_hex() == reference.digest_hex()


class TestFuzzCLI:
    def test_parser_accepts_fuzz_scenarios(self):
        from repro.experiments.__main__ import build_parser

        args = build_parser().parse_args(
            ["T2", "--scenario", "random:7"]
        )
        assert args.scenario == "random:7"

    def test_malformed_seed_fails_before_any_experiment(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["T2", "--scenario", "random:abc"]) == 2
        assert "non-negative integer" in capsys.readouterr().err

    def test_quick_and_full_are_mutually_exclusive(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["T2", "--quick", "--full"]) == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_list_scenarios_advertises_fuzzing(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["--list-scenarios"]) == 0
        assert "random:<seed>" in capsys.readouterr().out
