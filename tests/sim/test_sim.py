"""Unit tests for the sim package (scenario, runner, sweep, results)."""

import pytest

from repro.acoustics.geometry import Position, Room
from repro.sim.results import ResultTable
from repro.sim.runner import ScenarioRunner
from repro.sim.scenario import Scenario, VictimDevice
from repro.sim.sweep import accuracy_over_distances, success_rate
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def phone_device():
    return VictimDevice.phone(commands=("ok_google", "alexa"), seed=31)


@pytest.fixture(scope="module")
def base_scenario():
    return Scenario(
        command="ok_google",
        attacker_position=Position(0.0, 2.0, 1.0),
        victim_position=Position(2.0, 2.0, 1.0),
    )


class TestScenario:
    def test_distance(self, base_scenario):
        assert base_scenario.distance_m == pytest.approx(2.0)

    def test_at_distance(self, base_scenario):
        moved = base_scenario.at_distance(5.0)
        assert moved.distance_m == pytest.approx(5.0)
        assert moved.command == base_scenario.command

    def test_unknown_command_rejected(self):
        with pytest.raises(ExperimentError):
            Scenario(
                command="fire_the_missiles",
                attacker_position=Position(0, 0, 0),
                victim_position=Position(1, 0, 0),
            )

    def test_positions_validated_against_room(self):
        with pytest.raises(Exception):
            Scenario(
                command="alexa",
                attacker_position=Position(0, 0, 0),
                victim_position=Position(50, 0, 0),
                room=Room.meeting_room(),
            )

    def test_negative_distance_rejected(self, base_scenario):
        with pytest.raises(ExperimentError):
            base_scenario.at_distance(-1.0)


class TestVictimDevice:
    def test_phone_and_echo_presets(self):
        phone = VictimDevice.phone(seed=1)
        echo = VictimDevice.echo(seed=1)
        assert phone.microphone.config.device_rate == 48000.0
        assert echo.microphone.config.device_rate == 16000.0
        assert "ok_google" in phone.recognizer.commands
        assert "alexa" in echo.recognizer.commands


class TestRunner:
    def test_trial_outcome_fields(
        self, base_scenario, phone_device, attack_emission, rng
    ):
        runner = ScenarioRunner(base_scenario, phone_device)
        outcome = runner.run_trial(list(attack_emission.sources), rng)
        assert outcome.recognized_command in phone_device.recognizer.commands
        assert outcome.recording.sample_rate == 48000.0
        assert isinstance(outcome.success, bool)

    def test_full_drive_attack_succeeds_at_2m(
        self, base_scenario, phone_device, attack_emission, rng
    ):
        runner = ScenarioRunner(base_scenario, phone_device)
        outcomes = runner.run_trials(list(attack_emission.sources), 3, rng)
        assert sum(o.success for o in outcomes) >= 2

    def test_unenrolled_command_rejected(self, phone_device):
        scenario = Scenario(
            command="open_door",
            attacker_position=Position(0, 2, 1),
            victim_position=Position(2, 2, 1),
        )
        with pytest.raises(ExperimentError):
            ScenarioRunner(scenario, phone_device)

    def test_empty_sources_rejected(
        self, base_scenario, phone_device, rng
    ):
        runner = ScenarioRunner(base_scenario, phone_device)
        with pytest.raises(ExperimentError):
            runner.run_trial([], rng)


class TestSweep:
    def test_success_rate_bounds(
        self, base_scenario, phone_device, attack_emission, rng
    ):
        runner = ScenarioRunner(base_scenario, phone_device)
        rate = success_rate(
            runner, list(attack_emission.sources), 2, rng
        )
        assert 0.0 <= rate <= 1.0

    def test_accuracy_over_distances_shape(
        self, base_scenario, phone_device, attack_emission, rng
    ):
        results = accuracy_over_distances(
            base_scenario,
            phone_device,
            list(attack_emission.sources),
            [1.0, 2.0],
            1,
            rng,
        )
        assert [d for d, _ in results] == [1.0, 2.0]

    def test_empty_distances_rejected(
        self, base_scenario, phone_device, attack_emission, rng
    ):
        with pytest.raises(ExperimentError):
            accuracy_over_distances(
                base_scenario,
                phone_device,
                list(attack_emission.sources),
                [],
                1,
                rng,
            )


class TestResultTable:
    def test_add_and_render(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_row("x", "y")
        text = table.render()
        assert "demo" in text
        assert "2.5" in text

    def test_column_extraction(self):
        table = ResultTable("demo", ["a", "b"])
        table.add_row(1, 10)
        table.add_row(2, 20)
        assert table.column("b") == [10, 20]

    def test_wrong_width_rejected(self):
        table = ResultTable("demo", ["a", "b"])
        with pytest.raises(ExperimentError):
            table.add_row(1)

    def test_unknown_column_rejected(self):
        table = ResultTable("demo", ["a"])
        with pytest.raises(ExperimentError):
            table.column("zz")
