"""Shared fixtures.

Expensive artefacts (synthesised commands, attack emissions, enrolled
recognisers) are session-scoped: they are deterministic given their
seeds, so sharing them across tests changes nothing observable while
keeping the suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.acoustics.channel import AcousticChannel
from repro.acoustics.geometry import Position
from repro.attack.attacker import SingleSpeakerAttacker
from repro.hardware.devices import android_phone_microphone, horn_tweeter
from repro.speech.commands import synthesize_command
from repro.speech.recognizer import KeywordRecognizer


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/ reference tables from the current "
        "code instead of comparing against them",
    )


@pytest.fixture(scope="session")
def experiment_tables():
    """Every experiment's quick-mode table (seed 0, batched engine).

    Session-scoped and shared by the structural experiment tests, the
    golden-trace comparisons and the batch-equivalence suite, so the
    full 15-experiment sweep runs exactly once per pytest session.
    """
    from repro.experiments import ALL_EXPERIMENTS

    return {
        name: module.run(quick=True, seed=0)
        for name, module in ALL_EXPERIMENTS.items()
    }


@pytest.fixture()
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def session_rng() -> np.random.Generator:
    """Session-wide generator for building shared artefacts."""
    return np.random.default_rng(777)


@pytest.fixture(scope="session")
def ok_google_voice(session_rng):
    """One synthesised 'okay google' waveform shared by many tests."""
    return synthesize_command("ok_google", session_rng)


@pytest.fixture(scope="session")
def alexa_voice(session_rng):
    """One synthesised 'alexa' waveform."""
    return synthesize_command("alexa", session_rng)


@pytest.fixture(scope="session")
def attack_emission(ok_google_voice):
    """A full-drive single-speaker attack emission (expensive)."""
    attacker = SingleSpeakerAttacker(
        horn_tweeter(), Position(0.0, 2.0, 1.0)
    )
    return attacker.emit(ok_google_voice, drive_level=1.0)


@pytest.fixture(scope="session")
def attack_recording(attack_emission):
    """The phone's recording of the attack at 2 m."""
    rng = np.random.default_rng(42)
    channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
    arrived = channel.receive(
        list(attack_emission.sources), Position(2.0, 2.0, 1.0), rng
    )
    return android_phone_microphone().record(arrived, rng)


@pytest.fixture(scope="session")
def enrolled_recognizer():
    """A recogniser enrolled (multi-condition) on three commands."""
    recognizer = KeywordRecognizer()
    rng = np.random.default_rng(1234)
    for name in ("ok_google", "alexa", "take_a_picture"):
        wave = synthesize_command(name, rng)
        recognizer.enroll_multi_condition(name, wave, rng)
    return recognizer
