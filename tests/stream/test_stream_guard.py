"""Streaming guard parity and segmenter behaviour.

The headline property: for *any* chunk-size partition of a recording,
the gateless streaming guard's verdict, score, features and
recognition result are **bitwise identical** to the offline
:class:`~repro.defense.guard.GuardedVoiceAssistant` on the same
recording — for the attack and the genuine probe alike.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import chunk_partitions
from repro.defense.guard import GuardedVoiceAssistant
from repro.errors import StreamError
from repro.sim.spec import scenario_names
from repro.stream.guard import StreamingGuard
from repro.stream.segmenter import (
    OnlineSegmenter,
    SegmenterConfig,
    UtteranceClosed,
    UtteranceOpened,
)


def _assert_outcomes_bitwise(online, offline):
    assert online.executed_command == offline.executed_command
    assert online.vetoed == offline.vetoed
    assert online.recognition.accepted == offline.recognition.accepted
    assert online.recognition.command == offline.recognition.command
    assert online.recognition.distance == offline.recognition.distance
    assert online.recognition.distances == offline.recognition.distances
    assert (online.detection is None) == (offline.detection is None)
    if online.detection is not None:
        assert online.detection.score == offline.detection.score
        assert online.detection.is_attack == offline.detection.is_attack
        assert np.array_equal(
            online.detection.features, offline.detection.features
        )


class TestChunkedParity:
    @pytest.mark.parametrize("probe_index", [0, 1], ids=["attack", "genuine"])
    @given(data=st.data())
    @settings(max_examples=8, deadline=None)
    def test_any_partition_bitwise_identical(
        self, probe_index, stream_detector, stream_probes, data
    ):
        recordings, recognizer = stream_probes
        recording = recordings[probe_index]
        offline = GuardedVoiceAssistant(
            recognizer, stream_detector
        ).process(recording)
        partition = data.draw(
            chunk_partitions(recording.n_samples, max_parts=6)
        )
        guard = StreamingGuard(
            recognizer,
            stream_detector,
            recording.sample_rate,
            unit=recording.unit,
            gated=False,
        )
        cursor = 0
        samples = recording.samples
        for size in partition:
            assert guard.push(samples[cursor : cursor + size]) == []
            cursor += size
        online = guard.end_utterance()
        _assert_outcomes_bitwise(online, offline)

    def test_fixed_chunk_convenience_matches(
        self, stream_detector, stream_probes
    ):
        recordings, recognizer = stream_probes
        for recording in recordings:
            offline = GuardedVoiceAssistant(
                recognizer, stream_detector
            ).process(recording)
            for chunk in (1024, recording.n_samples):
                guard = StreamingGuard(
                    recognizer,
                    stream_detector,
                    recording.sample_rate,
                    unit=recording.unit,
                    gated=False,
                )
                online = guard.process_recording(recording, chunk)
                _assert_outcomes_bitwise(online, offline)


class TestEveryScenario:
    @pytest.mark.parametrize("scenario", scenario_names())
    def test_parity_holds_in_every_registered_environment(
        self, scenario
    ):
        """The bitwise guarantee is environment-independent: rooms,
        interference, motion and weather all stream identically."""
        from repro.experiments.s1_streaming import train_detector
        from repro.stream.fleet import synthesize_utterances

        detector = train_detector(scenario, seed=0, n_trials=2)
        rngs = [
            np.random.default_rng(child)
            for child in np.random.SeedSequence(2).spawn(2)
        ]
        recordings, recognizer = synthesize_utterances(
            scenario,
            "ok_google",
            None,
            rngs,
            np.array([True, False]),
            voice_seed=0,
        )
        for recording in recordings:
            offline = GuardedVoiceAssistant(
                recognizer, detector
            ).process(recording)
            for chunk in (977, recording.n_samples):
                guard = StreamingGuard(
                    recognizer,
                    detector,
                    recording.sample_rate,
                    unit=recording.unit,
                    gated=False,
                )
                online = guard.process_recording(recording, chunk)
                _assert_outcomes_bitwise(online, offline)


class TestGuardModes:
    def test_gated_guard_rejects_gateless_calls(
        self, stream_detector, stream_probes
    ):
        _, recognizer = stream_probes
        guard = StreamingGuard(
            recognizer, stream_detector, 16000.0, gated=True
        )
        with pytest.raises(StreamError):
            guard.end_utterance()
        guard_free = StreamingGuard(
            recognizer, stream_detector, 16000.0, gated=False
        )
        with pytest.raises(StreamError):
            guard_free.flush()

    def test_gateless_without_samples_raises(
        self, stream_detector, stream_probes
    ):
        _, recognizer = stream_probes
        guard = StreamingGuard(
            recognizer, stream_detector, 16000.0, gated=False
        )
        with pytest.raises(StreamError):
            guard.end_utterance()

    def test_rate_mismatch_rejected(
        self, stream_detector, stream_probes
    ):
        recordings, recognizer = stream_probes
        guard = StreamingGuard(
            recognizer, stream_detector, 16000.0, gated=False
        )
        with pytest.raises(StreamError):
            guard.process_recording(recordings[0], 1024)
        with pytest.raises(StreamError):
            guard.process_recording(
                recordings[0].replace(sample_rate=16000.0), 0
            )

    def test_construction_validation(
        self, stream_detector, stream_probes
    ):
        _, recognizer = stream_probes
        from repro.stream.segmenter import SegmenterConfig

        with pytest.raises(StreamError):
            StreamingGuard(
                recognizer, stream_detector, 4000.0, gated=False
            )
        with pytest.raises(StreamError):
            StreamingGuard(
                recognizer,
                stream_detector,
                16000.0,
                gated=False,
                segmenter_config=SegmenterConfig(),
            )

    def test_gated_segments_and_decides_an_embedded_utterance(
        self, stream_detector, stream_probes
    ):
        """A lead-in/gap-wrapped recording yields exactly one verdict
        whose boundaries cover the embedded speech."""
        recordings, recognizer = stream_probes
        recording = recordings[1]  # genuine
        rate = recording.sample_rate
        rng = np.random.default_rng(5)
        background = 0.1 * recording.rms()
        lead = rng.normal(size=int(0.4 * rate)) * background
        gap = rng.normal(size=int(0.6 * rate)) * background
        samples = np.concatenate([lead, recording.samples, gap])
        guard = StreamingGuard(
            recognizer,
            stream_detector,
            rate,
            unit=recording.unit,
            gated=True,
        )
        outcomes = []
        chunk = int(0.05 * rate)
        for start in range(0, samples.shape[0], chunk):
            outcomes.extend(guard.push(samples[start : start + chunk]))
        outcomes.extend(guard.flush())
        assert len(outcomes) == 1
        utterance = outcomes[0]
        speech_start = len(lead)
        speech_end = len(lead) + recording.n_samples
        # Boundaries within a frame-grid tolerance of the true span.
        tolerance = int(0.1 * rate)
        assert abs(utterance.start_sample - speech_start) <= tolerance
        assert abs(utterance.end_sample - speech_end) <= tolerance
        assert not utterance.forced
        assert utterance.latency_s(rate) > 0
        assert utterance.outcome.executed_command == "ok_google"


class TestSegmenterStateMachine:
    CFG = SegmenterConfig(
        open_factor=4.0,
        close_factor=2.0,
        open_frames=2,
        hangover_frames=3,
        close_frames=4,
    )

    def _run(self, energies):
        seg = OnlineSegmenter(16000.0, self.CFG)
        return seg, seg.process(0, np.asarray(energies))

    def test_opens_after_consecutive_active_frames(self):
        quiet, loud = 1.0, 10.0
        seg, events = self._run([quiet] * 10 + [loud] * 3)
        opened = [e for e in events if isinstance(e, UtteranceOpened)]
        assert len(opened) == 1
        # Second consecutive loud frame (index 11) opens; the run
        # began at frame 10.
        assert opened[0].frame == 11
        assert opened[0].start_sample == 10 * seg.hop

    def test_single_spike_does_not_open(self):
        quiet, loud = 1.0, 10.0
        _, events = self._run([quiet] * 10 + [loud] + [quiet] * 10)
        assert events == []

    def test_closes_after_hangover_plus_close_frames(self):
        quiet, loud = 1.0, 10.0
        seg, events = self._run(
            [quiet] * 10 + [loud] * 5 + [quiet] * 12
        )
        closed = [e for e in events if isinstance(e, UtteranceClosed)]
        assert len(closed) == 1
        last_voiced = 14  # frames 10..14 are loud
        assert closed[0].frame == last_voiced + 3 + 4
        assert (
            closed[0].end_sample
            == last_voiced * seg.hop + seg.frame_len + seg.pad
        )
        assert not closed[0].forced

    def test_hysteresis_keeps_soft_tail_voiced(self):
        quiet, loud, soft = 1.0, 10.0, 3.0  # soft > close_factor*floor
        seg, events = self._run(
            [quiet] * 10 + [loud] * 3 + [soft] * 5 + [quiet] * 12
        )
        closed = [e for e in events if isinstance(e, UtteranceClosed)]
        assert len(closed) == 1
        assert closed[0].end_sample == 17 * seg.hop + seg.frame_len + seg.pad

    def test_forced_close_at_max_utterance(self):
        config = SegmenterConfig(
            open_frames=2,
            hangover_frames=3,
            close_frames=4,
            max_utterance_s=0.5,
        )
        seg = OnlineSegmenter(16000.0, config)
        events = seg.process(
            0, np.asarray([1.0] * 10 + [10.0] * 100)
        )
        closed = [e for e in events if isinstance(e, UtteranceClosed)]
        assert closed and closed[0].forced
        assert (
            closed[0].end_sample - closed[0].start_sample
            == seg.max_samples
        )

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_forced_close_on_a_chunk_boundary_matches_offline(
        self, data
    ):
        """An utterance that hits ``max_utterance_s`` exactly at a
        chunk boundary yields the same event trace as the offline
        (single-call) path.

        The forcing frame is the nastiest place to cut the energy
        stream: the close fires on the last frame of one chunk or the
        first frame of the next, and either way the trace — open and
        close frames, sample boundaries, the ``forced`` flag — must be
        identical to processing every frame in one call.
        """
        config = SegmenterConfig(
            open_frames=2,
            hangover_frames=3,
            close_frames=4,
            max_utterance_s=0.5,
        )
        n_quiet = data.draw(st.integers(min_value=3, max_value=12))
        energies = np.asarray([1.0] * n_quiet + [10.0] * 80)
        offline_seg = OnlineSegmenter(16000.0, config)
        offline_events = offline_seg.process(0, energies)
        closed = [
            e for e in offline_events if isinstance(e, UtteranceClosed)
        ]
        assert closed and closed[0].forced
        # The span is capped at exactly max_samples (0.5 s lands on
        # the frame grid: 8000 samples = 48 hops past the opening
        # frame), so the boundary below cuts at the precise frame
        # where the cap trips.
        assert (
            closed[0].end_sample - closed[0].start_sample
            == offline_seg.max_samples
        )
        force_frame = closed[0].frame
        assert force_frame < len(energies) - 1
        cuts = data.draw(
            st.sets(
                st.integers(min_value=1, max_value=len(energies) - 1),
                max_size=5,
            )
        )
        # Pin one cut to the forcing frame itself (close fires as the
        # first frame of a chunk) or one past it (as the last frame).
        cuts.add(
            data.draw(st.sampled_from([force_frame, force_frame + 1]))
        )
        edges = [0] + sorted(cuts) + [len(energies)]
        streamed_seg = OnlineSegmenter(16000.0, config)
        streamed_events = []
        for start, end in zip(edges, edges[1:]):
            streamed_events.extend(
                streamed_seg.process(start, energies[start:end])
            )
        assert streamed_events == offline_events

    def test_out_of_order_frames_rejected(self):
        seg = OnlineSegmenter(16000.0, self.CFG)
        seg.process(0, np.ones(5))
        with pytest.raises(StreamError):
            seg.process(3, np.ones(5))

    def test_commit_bound_monotone_and_capped(self):
        quiet, loud = 1.0, 10.0
        seg = OnlineSegmenter(16000.0, self.CFG)
        seg.process(0, np.asarray([quiet] * 10 + [loud] * 3))
        assert seg.in_utterance
        head = 13 * seg.hop + seg.frame_len
        bound = seg.commit_bound(head)
        assert seg.utterance_start <= bound <= head
        assert seg.commit_bound(head + 100) >= bound

    def test_flush_closes_open_utterance(self):
        quiet, loud = 1.0, 10.0
        seg = OnlineSegmenter(16000.0, self.CFG)
        seg.process(0, np.asarray([quiet] * 10 + [loud] * 5))
        event = seg.flush(head=15 * seg.hop + seg.frame_len)
        assert isinstance(event, UtteranceClosed)
        assert seg.flush(head=0) is None
