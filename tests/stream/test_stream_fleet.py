"""Fleet simulator: worker-count determinism and report integrity."""

from __future__ import annotations

import pytest

from repro.errors import StreamError
from repro.stream.fleet import FleetConfig, FleetSimulator


@pytest.fixture(scope="module")
def fleet_reports(stream_detector):
    """The same small fleet run at several worker counts."""
    reports = {}
    for workers in (1, 3):
        config = FleetConfig(
            n_streams=4,
            utterances_per_stream=2,
            attack_fraction=0.5,
            seed=9,
            workers=workers,
        )
        reports[workers] = FleetSimulator(stream_detector, config).run()
    return reports


class TestDeterminism:
    def test_worker_count_never_changes_results(self, fleet_reports):
        """Verdicts, boundaries and latencies are identical for every
        worker count — threads change wall clock, not science."""
        assert (
            fleet_reports[1].digest() == fleet_reports[3].digest()
        )

    def test_rerun_is_reproducible(self, stream_detector, fleet_reports):
        config = FleetConfig(
            n_streams=4,
            utterances_per_stream=2,
            attack_fraction=0.5,
            seed=9,
            workers=2,
        )
        again = FleetSimulator(stream_detector, config).run()
        assert again.digest() == fleet_reports[1].digest()


class TestReport:
    def test_every_utterance_is_segmented(self, fleet_reports):
        report = fleet_reports[1]
        assert report.n_utterances == 4 * 2
        for stream in report.streams:
            assert len(stream.utterances) == 2
            assert len(stream.is_attack) == 2

    def test_dispositions_partition_the_utterances(self, fleet_reports):
        report = fleet_reports[1]
        assert (
            report.n_vetoed + report.n_executed + report.n_rejected
            == report.n_utterances
        )

    def test_latencies_are_positive_and_bounded(self, fleet_reports):
        report = fleet_reports[1]
        latencies = report.latencies_s()
        assert len(latencies) == report.n_utterances
        # Close horizon (hangover 8 + close 15 frames = 230 ms) plus
        # chunk granularity; generous upper bound for drift.
        assert all(0.0 < latency < 1.0 for latency in latencies)

    def test_stream_time_accounting(self, fleet_reports):
        report = fleet_reports[1]
        assert report.audio_seconds > 0
        for stream in report.streams:
            for utterance in stream.utterances:
                assert (
                    0
                    <= utterance.start_sample
                    < utterance.end_sample
                    <= utterance.emitted_at_sample
                )

    def test_detection_separates_classes(self, fleet_reports):
        """Attack slots veto (or fail recognition); genuine execute.

        This is the end-to-end claim of the fleet: online
        segmentation plus incremental features reproduce the
        defense's discrimination, not just its plumbing."""
        report = fleet_reports[1]
        for stream in report.streams:
            for is_attack, utterance in zip(
                stream.is_attack, stream.utterances
            ):
                if is_attack:
                    assert utterance.executed_command is None
                else:
                    assert not utterance.vetoed


class TestConfigValidation:
    def test_bad_configs_rejected(self):
        with pytest.raises(StreamError):
            FleetConfig(n_streams=0)
        with pytest.raises(StreamError):
            FleetConfig(attack_fraction=1.5)
        with pytest.raises(StreamError):
            FleetConfig(chunk_s=0.0)
        with pytest.raises(StreamError):
            FleetConfig(background_ratio=0.0)
        with pytest.raises(StreamError):
            FleetConfig(workers=0)
        with pytest.raises(StreamError):
            FleetConfig(shards=0)

    def test_unknown_scenario_rejected(self):
        with pytest.raises(Exception):
            FleetConfig(scenario="no_such_place")
