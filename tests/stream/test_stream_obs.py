"""Observability in the streaming stack: inert, complete, merged.

Three contracts from the ``repro.obs`` integration:

* **bitwise inertness** — running a fleet under an active tracer and
  metrics registry produces the identical digest to an untraced run,
  on both kernel paths;
* **completeness** — the trace carries every stream-kernel stage and
  one utterance marker per segmented utterance;
* **shard-boundary attribution** — spans recorded inside pool-worker
  shards come home in the :class:`~repro.stream.shard.ShardResult`
  and merge under the coordinator's ``sharded-fleet`` span with
  non-overlapping ids and intact nesting.
"""

from __future__ import annotations

import pytest

from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import activate as activate_metrics
from repro.obs.trace import Tracer, activate
from repro.stream.fleet import FleetConfig, FleetSimulator
from repro.stream.shard import (
    ShardedFleetSimulator,
    plan_shards,
    run_shard,
)

KERNEL_STAGES = {
    "assemble", "ingest", "segment", "close", "welch",
    "recognize", "detect",
}


def small_config(**overrides) -> FleetConfig:
    defaults = dict(
        n_streams=2,
        utterances_per_stream=2,
        attack_fraction=0.5,
        seed=9,
        workers=2,
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def spans_by_name(spans):
    index = {}
    for span in spans:
        index.setdefault(span.name, []).append(span)
    return index


@pytest.fixture(scope="module")
def untraced_digest(stream_detector):
    return (
        FleetSimulator(stream_detector, small_config()).run().digest()
    )


class TestBitwiseInertness:
    @pytest.mark.parametrize("vectorized", [True, False])
    def test_tracing_never_changes_the_fleet_digest(
        self, stream_detector, untraced_digest, vectorized
    ):
        tracer = Tracer()
        registry = MetricsRegistry()
        config = small_config(vectorized=vectorized)
        with activate(tracer), activate_metrics(registry):
            report = FleetSimulator(stream_detector, config).run()
        assert report.digest() == untraced_digest
        assert tracer.spans, "tracing was active but recorded nothing"
        assert registry.counter("fleet.utterances").value == 4

    def test_sharded_run_matches_untraced_unsharded(
        self, stream_detector, untraced_digest
    ):
        tracer = Tracer()
        config = small_config(shards=2)
        with activate(tracer):
            report = ShardedFleetSimulator(
                stream_detector, config
            ).run()
        assert report.digest() == untraced_digest


class TestCompleteness:
    def test_trace_covers_every_kernel_stage_and_utterance(
        self, stream_detector
    ):
        tracer = Tracer()
        with activate(tracer):
            report = FleetSimulator(
                stream_detector, small_config()
            ).run()
        names = spans_by_name(tracer.spans)
        assert KERNEL_STAGES <= set(names)
        utterances = names["utterance"]
        assert len(utterances) == report.n_utterances
        latencies = sorted(
            span.attrs["latency_s"] for span in utterances
        )
        assert latencies == sorted(report.latencies_s())
        assert {span.attrs["stream"] for span in utterances} == {0, 1}

    def test_scalar_path_emits_stream_and_utterance_spans(
        self, stream_detector
    ):
        tracer = Tracer()
        with activate(tracer):
            report = FleetSimulator(
                stream_detector, small_config(vectorized=False)
            ).run()
        names = spans_by_name(tracer.spans)
        streams = names["stream"]
        assert len(streams) == 2
        for utterance in names["utterance"]:
            assert utterance.parent_id in {
                span.span_id for span in streams
            }
        assert len(names["utterance"]) == report.n_utterances


class TestShardBoundary:
    def test_untraced_task_ships_no_spans(self, stream_detector):
        task = plan_shards(stream_detector, small_config())[0]
        assert task.trace is False
        assert run_shard(task).spans == []

    def test_traced_task_ships_its_spans_home(self, stream_detector):
        task = plan_shards(
            stream_detector, small_config(), trace=True
        )[0]
        result = run_shard(task)
        names = spans_by_name(result.spans)
        shard_span = names["shard"][0]
        assert shard_span.parent_id is None
        assert shard_span.attrs == {"shard": 0, "streams": 2}
        assert "synthesize" in names
        assert KERNEL_STAGES <= set(names)

    def test_pool_worker_spans_merge_under_the_coordinator(
        self, stream_detector
    ):
        """Two real pool processes; their locally-rooted spans arrive
        re-based with fresh, non-overlapping ids, shard spans under
        ``sharded-fleet``, kernel stages under their own shard."""
        tracer = Tracer()
        config = small_config(shards=2)
        with activate(tracer):
            report = ShardedFleetSimulator(
                stream_detector, config
            ).run()
        spans = tracer.spans
        assert len({span.span_id for span in spans}) == len(spans)
        names = spans_by_name(spans)
        fleet = names["sharded-fleet"][0]
        shards = names["shard"]
        assert sorted(s.attrs["shard"] for s in shards) == [0, 1]
        assert {s.parent_id for s in shards} == {fleet.span_id}
        shard_ids = {s.span_id for s in shards}
        for name in ("synthesize", "stream-group"):
            for span in names[name]:
                assert span.parent_id in shard_ids
        utterances = names["utterance"]
        assert len(utterances) == report.n_utterances
