"""Incremental Welch/trace extraction: bitwise equality with offline.

The streaming guard's parity rests on two layers pinned here:

* :class:`WelchAccumulator` reproduces
  :func:`~repro.dsp.spectrum.welch_psd_matrix` bitwise for any chunk
  arrival pattern and any commit schedule, on both sides of the
  one-segment boundary (incremental accumulation vs the padded-FFT
  fallback);
* :class:`StreamingTraceExtractor` reproduces
  :func:`~repro.defense.traces.analyze_traces` bitwise, including
  when the utterance end retroactively trims fed samples.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import chunk_partitions
from repro.defense.traces import analyze_traces
from repro.dsp.signals import Signal
from repro.dsp.spectrum import welch_psd_matrix
from repro.errors import StreamError
from repro.stream.features import (
    StreamingTraceExtractor,
    WelchAccumulator,
)


def _wave(n: int, seed: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n)


class TestWelchAccumulator:
    @given(
        n=st.integers(min_value=300, max_value=2000),
        seed=st.integers(min_value=0, max_value=2**31),
        parts=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_bitwise_any_commit_schedule(self, n, seed, parts):
        rate = 8000.0
        wave = _wave(n, seed)
        reference = welch_psd_matrix(
            wave[np.newaxis, :],
            rate,
            segment_length=min(256, n),
            window="blackman",
        )
        acc = WelchAccumulator(rate, segment_length=256)
        # Commit in `parts` arbitrary monotone steps, then finalize.
        bounds = sorted(
            np.random.default_rng(seed + 1).integers(0, n + 1, parts)
        )
        for bound in bounds:
            acc.advance(wave, int(bound))
        freqs, psd = acc.finalize(wave, n)
        assert np.array_equal(freqs, reference[0])
        assert np.array_equal(psd, reference[1])

    def test_short_signal_fallback_matches(self):
        rate = 8000.0
        wave = _wave(200, 3)
        acc = WelchAccumulator(rate, segment_length=256)
        acc.advance(wave, 200)  # no whole segment: accumulates nothing
        assert acc.segments_accumulated == 0
        freqs, psd = acc.finalize(wave, 200)
        ref_freqs, ref_psd = welch_psd_matrix(
            wave[np.newaxis, :],
            rate,
            segment_length=200,
            window="blackman",
        )
        assert np.array_equal(freqs, ref_freqs)
        assert np.array_equal(psd, ref_psd)

    def test_exact_one_segment_boundary(self):
        rate = 8000.0
        wave = _wave(256, 4)
        acc = WelchAccumulator(rate, segment_length=256)
        freqs, psd = acc.finalize(wave, 256)
        ref = welch_psd_matrix(
            wave[np.newaxis, :], rate, segment_length=256,
            window="blackman",
        )
        assert np.array_equal(psd, ref[1])

    def test_commit_beyond_buffer_raises(self):
        acc = WelchAccumulator(8000.0, segment_length=256)
        with pytest.raises(StreamError):
            acc.advance(np.zeros(100), 200)

    def test_overrun_caught_on_the_incremental_path_too(self):
        """Committing past the eventual close is an error on both
        sides of the one-segment boundary, never a silent divergence."""
        wave = _wave(2000, 5)
        acc = WelchAccumulator(8000.0, segment_length=256)
        acc.advance(wave, 2000)
        with pytest.raises(StreamError):
            acc.finalize(wave, 600)  # accumulated segments cross 600

    def test_invalid_parameters_rejected(self):
        with pytest.raises(StreamError):
            WelchAccumulator(8000.0, segment_length=1)
        with pytest.raises(StreamError):
            WelchAccumulator(8000.0, overlap=1.0)
        acc = WelchAccumulator(8000.0, segment_length=256)
        with pytest.raises(StreamError):
            acc.finalize(np.zeros(10), 0)


class TestStreamingTraceExtractor:
    @given(
        n=st.integers(min_value=4000, max_value=20000),
        seed=st.integers(min_value=0, max_value=2**31),
        data=st.data(),
    )
    @settings(max_examples=15, deadline=None)
    def test_bitwise_any_partition(self, n, seed, data):
        """Any chunking, eager commits: analysis equals offline."""
        rate = 16000.0
        wave = _wave(n, seed)
        partition = data.draw(chunk_partitions(n, max_parts=6))
        extractor = StreamingTraceExtractor(rate)
        cursor = 0
        for size in partition:
            extractor.feed(wave[cursor : cursor + size])
            cursor += size
            extractor.commit(cursor)
        online = extractor.finalize()
        offline = analyze_traces(Signal(wave, rate))
        assert online == offline

    def test_retroactive_trim_matches_offline(self):
        """Samples fed past the close boundary are trimmed bitwise."""
        rate = 16000.0
        wave = _wave(18000, 11)
        length = 12500
        extractor = StreamingTraceExtractor(rate)
        extractor.feed(wave[:9000])
        extractor.commit(9000)
        extractor.feed(wave[9000:])  # runs past the eventual end
        extractor.commit(length)
        online = extractor.finalize(length)
        offline = analyze_traces(Signal(wave[:length], rate))
        assert online == offline

    def test_commit_overrun_is_caught(self):
        extractor = StreamingTraceExtractor(16000.0)
        extractor.feed(_wave(18000, 12))
        extractor.commit(18000)
        with pytest.raises(StreamError):
            extractor.finalize(9000)  # below committed

    def test_extractor_is_single_use(self):
        extractor = StreamingTraceExtractor(16000.0)
        extractor.feed(_wave(4000, 13))
        extractor.finalize()
        with pytest.raises(StreamError):
            extractor.feed(np.zeros(10))

    def test_low_rate_rejected(self):
        with pytest.raises(StreamError):
            StreamingTraceExtractor(4000.0)

    def test_feed_and_waveform_validation(self):
        extractor = StreamingTraceExtractor(16000.0)
        with pytest.raises(StreamError):
            extractor.feed(np.zeros((2, 2)))
        extractor.feed(_wave(100, 14))
        with pytest.raises(StreamError):
            extractor.commit(200)
        with pytest.raises(StreamError):
            extractor.waveform(101)
        with pytest.raises(StreamError):
            extractor.finalize(0)
