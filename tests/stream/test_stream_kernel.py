"""Structure-of-arrays fleet kernel: digest parity and ring units.

The kernel's contract (:mod:`repro.stream.kernel`) is that grouping
streams into lockstep batches is pure plumbing — every per-stream
digest is bitwise the scalar :func:`~repro.stream.fleet.drive_stream`
loop's, for *any* grouping of streams into kernel batches. A
hypothesis property pins it over arbitrary partitions (non-contiguous,
unordered — strictly wider than the contiguous ``batch_streams``
splits production uses), a second property walks the public
``batch_streams`` knob itself, and unit tests nail the shared ring
(:class:`~repro.stream.chunker.ChunkedStreamBatch`): exact
reconstruction, doubling growth, wraparound reuse and the
row-for-row frame-energy equivalence with the scalar ring.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from strategies import chunk_partitions, index_partitions

from repro.errors import StreamError
from repro.stream import kernel
from repro.stream.chunker import ChunkedStream, ChunkedStreamBatch
from repro.stream.fleet import (
    FleetConfig,
    FleetSimulator,
    check_fleet_rate,
    fleet_seed_plan,
    synthesize_utterances,
)

#: One small fleet, shared by every kernel comparison in this file.
CONFIG = FleetConfig(
    n_streams=5,
    utterances_per_stream=1,
    attack_fraction=0.5,
    seed=9,
    workers=1,
)


@pytest.fixture(scope="module")
def scalar_report(stream_detector):
    """The reference: the same fleet through the scalar loop."""
    config = FleetConfig(
        n_streams=CONFIG.n_streams,
        utterances_per_stream=CONFIG.utterances_per_stream,
        attack_fraction=CONFIG.attack_fraction,
        seed=CONFIG.seed,
        workers=CONFIG.workers,
        vectorized=False,
    )
    return FleetSimulator(stream_detector, config).run()


@pytest.fixture(scope="module")
def fleet_inputs():
    """(recordings, recognizer, attack_mask, stream_seqs, rate) for
    CONFIG, synthesised once and streamed many times by the
    properties."""
    attack_mask, trial_seqs, stream_seqs = fleet_seed_plan(CONFIG)
    trial_rngs = [
        np.random.default_rng(child) for child in trial_seqs
    ]
    recordings, recognizer = synthesize_utterances(
        CONFIG.scenario,
        CONFIG.command,
        CONFIG.distance_m,
        trial_rngs,
        attack_mask,
        voice_seed=CONFIG.seed,
    )
    rate = check_fleet_rate(recordings)
    return recordings, recognizer, attack_mask, stream_seqs, rate


class TestKernelDigestParity:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(partition=index_partitions(CONFIG.n_streams))
    def test_any_grouping_matches_the_scalar_digest(
        self, stream_detector, scalar_report, fleet_inputs, partition
    ):
        """Arbitrary stream-to-group assignment — non-contiguous,
        unordered, any group sizes — merges to the scalar loop's
        digest bitwise."""
        recordings, recognizer, attack_mask, stream_seqs, rate = (
            fleet_inputs
        )
        per = CONFIG.utterances_per_stream
        raw_runs = []
        for group in partition:
            runs, _ = kernel.drive_stream_group(
                CONFIG,
                stream_detector,
                None,
                [int(pos) for pos in group],
                rate,
                recognizer,
                [
                    recordings[pos * per : (pos + 1) * per]
                    for pos in group
                ],
                [
                    attack_mask[pos * per : (pos + 1) * per]
                    for pos in group
                ],
                [stream_seqs[pos] for pos in group],
            )
            raw_runs.extend(runs)
        merged = [
            raw.commit()
            for raw in sorted(raw_runs, key=lambda raw: raw.index)
        ]
        reference = scalar_report.digest()
        assert (
            tuple(
                (s.index, s.is_attack, s.duration_s, s.utterances)
                for s in merged
            )
            == reference
        )

    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        batch_streams=st.integers(
            min_value=1, max_value=CONFIG.n_streams + 1
        )
    )
    def test_any_batch_streams_matches_the_scalar_digest(
        self, stream_detector, scalar_report, batch_streams
    ):
        """The public knob: every lockstep group width produces the
        identical fleet digest through the full simulator."""
        config = FleetConfig(
            n_streams=CONFIG.n_streams,
            utterances_per_stream=CONFIG.utterances_per_stream,
            attack_fraction=CONFIG.attack_fraction,
            seed=CONFIG.seed,
            workers=CONFIG.workers,
            vectorized=True,
            batch_streams=batch_streams,
        )
        report = FleetSimulator(stream_detector, config).run()
        assert report.digest() == scalar_report.digest()

    def test_multi_utterance_streams_match(self, stream_detector):
        """Two utterances per stream: open/close/reopen boundary
        events inside one lockstep group still match the scalar
        loop."""
        reports = {}
        for vectorized in (False, True):
            config = FleetConfig(
                n_streams=3,
                utterances_per_stream=2,
                attack_fraction=0.5,
                seed=11,
                workers=1,
                vectorized=vectorized,
                batch_streams=2,
            )
            reports[vectorized] = FleetSimulator(
                stream_detector, config
            ).run()
        assert reports[True].digest() == reports[False].digest()


class TestRecognizeMany:
    def test_matches_scalar_recognize_bitwise(self, stream_probes):
        recordings, recognizer = stream_probes
        batched = recognizer.recognize_many(recordings)
        for recording, result in zip(recordings, batched):
            single = recognizer.recognize(recording)
            assert result.accepted == single.accepted
            assert result.command == single.command
            assert result.distance == single.distance

    def test_slab_composition_is_invisible(self, stream_probes):
        """Tiny max_pairs forces multiple DTW slabs; results are the
        single-slab ones exactly."""
        recordings, recognizer = stream_probes
        whole = recognizer.recognize_many(recordings)
        sliced = recognizer.recognize_many(recordings, max_pairs=1)
        for a, b in zip(whole, sliced):
            assert (a.accepted, a.command, a.distance) == (
                b.accepted,
                b.command,
                b.distance,
            )


def _random_rows(rows: int, n: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=(rows, n))


class TestBatchRing:
    def test_roundtrip_exact(self):
        ring = ChunkedStreamBatch(3, 16000.0)
        waves = _random_rows(3, 5000)
        ring.push_block(waves[:, :1234])
        ring.push_block(waves[:, 1234:])
        assert ring.head == 5000
        for row in range(3):
            assert np.array_equal(
                ring.read_row(row, 0, 5000), waves[row]
            )

    @given(partition=chunk_partitions(4096, max_parts=7))
    @settings(max_examples=25, deadline=None)
    def test_any_partition_reconstructs(self, partition):
        ring = ChunkedStreamBatch(2, 16000.0)
        waves = _random_rows(2, 4096)
        cursor = 0
        for size in partition:
            ring.push_block(waves[:, cursor : cursor + size])
            cursor += size
        for row in range(2):
            assert np.array_equal(
                ring.read_row(row, 0, 4096), waves[row]
            )

    def test_growth_preserves_retained_rows(self):
        ring = ChunkedStreamBatch(3, 16000.0)
        small = ring.capacity
        waves = _random_rows(3, 4 * small)
        ring.push_block(waves)  # forces at least two doublings
        assert ring.capacity >= 4 * small
        for row in range(3):
            assert np.array_equal(
                ring.read_row(row, 0, waves.shape[1]), waves[row]
            )

    def test_wraparound_after_release(self):
        ring = ChunkedStreamBatch(2, 16000.0)
        capacity = ring.capacity
        first = _random_rows(2, capacity - 10, seed=1)
        ring.push_block(first)
        ring.release(capacity - 10)
        second = _random_rows(2, capacity - 10, seed=2)
        ring.push_block(second)  # wraps inside the same allocation
        assert ring.capacity == capacity
        for row in range(2):
            got = ring.read_row(
                row, capacity - 10, 2 * (capacity - 10)
            )
            assert np.array_equal(got, second[row])

    def test_energies_match_the_scalar_ring_bitwise(self):
        """Row i of the batch ring's frame energies equals the scalar
        ring's for row i's samples — through both the unwrapped-span
        fast path and the wrapped (linearized) path."""
        rate = 16000.0
        rows = 3
        waves = _random_rows(rows, int(1.0 * rate))
        batch = ChunkedStreamBatch(rows, rate)
        scalars = [ChunkedStream(rate) for _ in range(rows)]
        batch_energies = []
        scalar_energies = [[] for _ in range(rows)]
        for start in range(0, waves.shape[1], 333):
            block = waves[:, start : start + 333]
            batch.push_block(block)
            first, energies = batch.pending_frame_energies()
            assert first == len(batch_energies)
            batch_energies.extend(energies.T)
            # Aggressive release forces the ring to wrap well before
            # the stream ends, covering the wrapped span path too.
            keep = batch.frames_emitted * batch.hop
            batch.release(min(keep, batch.head))
            for row in range(rows):
                scalars[row].push(block[row])
                _, row_energies = scalars[row].pending_frame_energies()
                scalar_energies[row].extend(row_energies)
                scalars[row].release(
                    min(keep, scalars[row].head)
                )
        stacked = np.asarray(batch_energies).T
        for row in range(rows):
            assert np.array_equal(
                stacked[row], np.asarray(scalar_energies[row])
            )

    def test_gather_rows_stacks_read_row(self):
        ring = ChunkedStreamBatch(3, 16000.0)
        waves = _random_rows(3, 2000)
        ring.push_block(waves)
        rows = np.array([2, 0, 2])
        starts = np.array([100, 700, 1500])
        slab = ring.gather_rows(rows, starts, 256)
        for j, (row, start) in enumerate(zip(rows, starts)):
            assert np.array_equal(
                slab[j],
                ring.read_row(int(row), int(start), int(start) + 256),
            )

    def test_validation(self):
        ring = ChunkedStreamBatch(2, 16000.0)
        with pytest.raises(StreamError):
            ChunkedStreamBatch(0, 16000.0)
        with pytest.raises(StreamError):
            ring.push_block(np.zeros(5))  # 1-D
        with pytest.raises(StreamError):
            ring.push_block(np.zeros((3, 5)))  # wrong row count
        with pytest.raises(StreamError):
            ring.push_block(np.array([[1.0, np.nan], [0.0, 0.0]]))
        ring.push_block(_random_rows(2, 100))
        ring.release(50)
        with pytest.raises(StreamError):
            ring.read_row(0, 0, 60)  # released
        with pytest.raises(StreamError):
            ring.read_row(0, 50, 101)  # beyond head
        with pytest.raises(StreamError):
            ring.read_row(0, 80, 70)  # inverted
        with pytest.raises(StreamError):
            ring.read_row(2, 50, 60)  # no such row
        with pytest.raises(StreamError):
            ring.release(101)
