"""Sharded fleet driver: partition invariance, merging, commit queue.

The core claim of :mod:`repro.stream.shard` is that sharding is pure
plumbing — *any* partition of the fleet's streams into shards, run
through the per-shard synthesis + streaming loop and merged by the
accumulator, is bitwise identical to the unsharded
:class:`~repro.stream.fleet.FleetSimulator`. A hypothesis property
pins it over random partitions (non-contiguous, unordered), a
process-pool test pins the real executor path, and unit tests nail
the accumulator's double-count/missing-stream validation and the
commit queue's draining semantics.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from strategies import index_partitions

from repro.errors import StreamError
from repro.stream.fleet import FleetConfig, FleetSimulator
from repro.stream.shard import (
    CommitQueue,
    ShardAccumulator,
    ShardedFleetSimulator,
    ShardResult,
    ShardTask,
    plan_shards,
    run_shard,
)

#: One small fleet, shared by every sharding comparison in this file.
CONFIG = FleetConfig(
    n_streams=4,
    utterances_per_stream=1,
    attack_fraction=0.5,
    seed=9,
    workers=1,
)


@pytest.fixture(scope="module")
def unsharded_report(stream_detector):
    """The reference: the same fleet through the unsharded loop."""
    return FleetSimulator(stream_detector, CONFIG).run()


def _dispositions(report):
    return (
        report.n_vetoed,
        report.n_executed,
        report.n_rejected,
        report.n_utterances,
    )


class TestPartitionInvariance:
    @settings(
        max_examples=5,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(partition=index_partitions(CONFIG.n_streams))
    def test_any_partition_merges_to_the_unsharded_digest(
        self, stream_detector, unsharded_report, partition
    ):
        """Arbitrary stream-to-shard assignment — non-contiguous,
        unordered — yields the identical fleet digest and disposition
        counts."""
        accumulator = ShardAccumulator(CONFIG.n_streams)
        tasks = plan_shards(
            stream_detector, CONFIG, partitions=partition
        )
        for task in tasks:
            accumulator.add(run_shard(task))
        merged = accumulator.report(CONFIG)
        assert merged.digest() == unsharded_report.digest()
        assert merged.digest_hex() == unsharded_report.digest_hex()
        assert _dispositions(merged) == _dispositions(
            unsharded_report
        )

    def test_single_shard_simulator_matches(
        self, stream_detector, unsharded_report
    ):
        """shards=1 (the in-process degenerate case) is bitwise equal
        to FleetSimulator."""
        report = ShardedFleetSimulator(stream_detector, CONFIG).run()
        assert report.digest() == unsharded_report.digest()

    def test_process_pool_matches(
        self, stream_detector, unsharded_report
    ):
        """The real executor path: two worker processes, same digest,
        per-shard wall clocks reported."""
        config = FleetConfig(
            n_streams=4,
            utterances_per_stream=1,
            attack_fraction=0.5,
            seed=9,
            workers=1,
            shards=2,
        )
        report = ShardedFleetSimulator(stream_detector, config).run()
        assert report.digest() == unsharded_report.digest()
        assert len(report.shard_wall_seconds) == 2
        assert all(w > 0 for w in report.shard_wall_seconds)


class TestPlan:
    def test_default_plan_covers_the_fleet(self, stream_detector):
        config = FleetConfig(n_streams=5, seed=3, shards=2)
        tasks = plan_shards(stream_detector, config)
        assert len(tasks) == 2
        covered = sorted(
            index for task in tasks for index in task.stream_indices
        )
        assert covered == list(range(5))

    def test_plan_never_exceeds_streams(self, stream_detector):
        config = FleetConfig(n_streams=2, seed=3, shards=8)
        tasks = plan_shards(stream_detector, config)
        assert len(tasks) == 2  # at most one shard per stream

    def test_task_validation(self, stream_detector):
        tasks = plan_shards(stream_detector, CONFIG)
        task = tasks[0]
        with pytest.raises(StreamError):
            ShardTask(
                config=task.config,
                shard_index=0,
                stream_indices=(),
                stream_seqs=(),
                slot_seqs=(),
                slot_attacks=(),
                detector=task.detector,
                segmenter_config=None,
            )
        with pytest.raises(StreamError):
            ShardTask(
                config=task.config,
                shard_index=0,
                stream_indices=task.stream_indices,
                stream_seqs=task.stream_seqs[:-1],
                slot_seqs=task.slot_seqs,
                slot_attacks=task.slot_attacks,
                detector=task.detector,
                segmenter_config=None,
            )


class TestAccumulator:
    def _result(self, shard_index, streams, rate=48000.0):
        return ShardResult(
            shard_index=shard_index,
            sample_rate=rate,
            streams=streams,
            prepare_seconds=0.1,
            wall_seconds=0.2,
        )

    def test_overlapping_partition_rejected(self, unsharded_report):
        streams = unsharded_report.streams
        accumulator = ShardAccumulator(4)
        accumulator.add(self._result(0, streams[:2]))
        with pytest.raises(StreamError, match="two shards"):
            accumulator.add(self._result(1, streams[1:3]))

    def test_out_of_range_stream_rejected(self, unsharded_report):
        accumulator = ShardAccumulator(2)
        with pytest.raises(StreamError, match="outside"):
            accumulator.add(
                self._result(0, unsharded_report.streams[2:])
            )

    def test_missing_streams_rejected_at_report(
        self, unsharded_report
    ):
        accumulator = ShardAccumulator(4)
        accumulator.add(self._result(0, unsharded_report.streams[:2]))
        with pytest.raises(StreamError, match="missing"):
            accumulator.report(CONFIG)

    def test_rate_mismatch_rejected(self, unsharded_report):
        streams = unsharded_report.streams
        accumulator = ShardAccumulator(4)
        accumulator.add(self._result(0, streams[:2], rate=48000.0))
        with pytest.raises(StreamError, match="device rate"):
            accumulator.add(self._result(1, streams[2:], rate=44100.0))

    def test_merge_is_completion_order_insensitive(
        self, unsharded_report
    ):
        streams = unsharded_report.streams
        accumulator = ShardAccumulator(4)
        accumulator.add(self._result(1, streams[2:]))
        accumulator.add(self._result(0, streams[:2]))
        merged = accumulator.report(CONFIG)
        assert [s.index for s in merged.streams] == [0, 1, 2, 3]
        assert merged.digest() == unsharded_report.digest()
        # wall: slowest shard; per-shard walls in shard order
        assert merged.shard_wall_seconds == (0.2, 0.2)
        assert merged.wall_seconds == 0.2


class TestCommitQueue:
    def test_commits_in_put_order(self):
        queue = CommitQueue(lambda x: x * 2)
        for value in range(20):
            queue.put(value)
        assert queue.close() == [v * 2 for v in range(20)]

    def test_close_is_idempotent(self):
        queue = CommitQueue(lambda x: x)
        queue.put(1)
        assert queue.close() == [1]
        assert queue.close() == [1]

    def test_put_after_close_rejected(self):
        queue = CommitQueue(lambda x: x)
        queue.close()
        with pytest.raises(StreamError):
            queue.put(1)

    def test_commit_error_surfaces_at_close(self):
        def explode(value):
            if value == 2:
                raise ValueError("boom")
            return value

        queue = CommitQueue(explode)
        for value in range(5):
            queue.put(value)
        with pytest.raises(ValueError, match="boom"):
            queue.close()
