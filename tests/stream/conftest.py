"""Shared fixtures for the streaming suite.

The expensive artefacts — a trained detector and a pair of
pipeline-synthesised probe recordings (one attack, one genuine) —
are deterministic given their seeds and session-scoped, so the parity
properties rerun the cheap part (streaming) against fixed references.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.s1_streaming import train_detector
from repro.stream.fleet import synthesize_utterances


@pytest.fixture(scope="session")
def stream_detector():
    """A small fitted detector shared by every streaming test."""
    return train_detector("free_field", seed=0, n_trials=2)


@pytest.fixture(scope="session")
def stream_probes():
    """(recordings, recognizer): one attack and one genuine probe.

    ``recordings[0]`` is the attack, ``recordings[1]`` the genuine
    playback, both device-rate digital recordings synthesised through
    the batched trial pipeline in the free field.
    """
    rngs = [
        np.random.default_rng(child)
        for child in np.random.SeedSequence(1).spawn(2)
    ]
    return synthesize_utterances(
        "free_field",
        "ok_google",
        None,
        rngs,
        np.array([True, False]),
        voice_seed=0,
    )
