"""Ring-buffer unit coverage: exact reconstruction, growth, frames."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import chunk_partitions
from repro.dsp.signals import Signal
from repro.errors import StreamError
from repro.speech.vad import frame_energies
from repro.stream.chunker import ChunkedStream


def _random_wave(n: int, seed: int = 7) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=n)


class TestPushRead:
    def test_roundtrip_exact(self):
        stream = ChunkedStream(16000.0)
        wave = _random_wave(5000)
        stream.push(wave[:1234])
        stream.push(wave[1234:])
        assert stream.head == 5000
        assert np.array_equal(stream.read(0, 5000), wave)

    @given(partition=chunk_partitions(4096, max_parts=7))
    @settings(max_examples=25, deadline=None)
    def test_any_partition_reconstructs(self, partition):
        stream = ChunkedStream(16000.0)
        wave = _random_wave(4096)
        cursor = 0
        for size in partition:
            stream.push(wave[cursor : cursor + size])
            cursor += size
        assert np.array_equal(stream.read(0, 4096), wave)

    def test_growth_preserves_retained_samples(self):
        stream = ChunkedStream(16000.0)
        small = stream.capacity
        wave = _random_wave(4 * small)
        stream.push(wave)  # forces at least two doublings
        assert stream.capacity >= 4 * small
        assert np.array_equal(stream.read(0, len(wave)), wave)

    def test_wraparound_after_release(self):
        stream = ChunkedStream(16000.0)
        capacity = stream.capacity
        first = _random_wave(capacity - 10, seed=1)
        stream.push(first)
        stream.release(capacity - 10)
        second = _random_wave(capacity - 10, seed=2)
        stream.push(second)  # wraps inside the same allocation
        assert stream.capacity == capacity
        got = stream.read(capacity - 10, 2 * (capacity - 10))
        assert np.array_equal(got, second)

    def test_read_outside_window_raises(self):
        stream = ChunkedStream(16000.0)
        stream.push(_random_wave(100))
        stream.release(50)
        with pytest.raises(StreamError):
            stream.read(0, 60)
        with pytest.raises(StreamError):
            stream.read(50, 101)
        with pytest.raises(StreamError):
            stream.read(80, 70)

    def test_release_beyond_head_raises(self):
        stream = ChunkedStream(16000.0)
        stream.push(_random_wave(10))
        with pytest.raises(StreamError):
            stream.release(11)

    def test_non_finite_and_shape_rejected(self):
        stream = ChunkedStream(16000.0)
        with pytest.raises(StreamError):
            stream.push(np.array([1.0, np.nan]))
        with pytest.raises(StreamError):
            stream.push(np.zeros((2, 2)))


class TestFrameGrid:
    def test_energies_match_offline_vad_bitwise(self):
        rate = 16000.0
        wave = _random_wave(int(0.5 * rate))
        offline = frame_energies(Signal(wave, rate))
        stream = ChunkedStream(rate)
        online = []
        for start in range(0, len(wave), 333):
            stream.push(wave[start : start + 333])
            first, energies = stream.pending_frame_energies()
            assert first == len(online)
            online.extend(energies)
        assert np.array_equal(np.asarray(online), offline)

    def test_frames_never_reemitted(self):
        stream = ChunkedStream(16000.0)
        stream.push(_random_wave(1000))
        first, energies = stream.pending_frame_energies()
        assert first == 0 and energies.size > 0
        again, more = stream.pending_frame_energies()
        assert again == stream.frames_emitted and more.size == 0

    def test_release_past_frame_grid_raises(self):
        stream = ChunkedStream(16000.0)
        stream.push(_random_wave(2000))
        stream.pending_frame_energies()
        stream.release(2000)
        stream.push(_random_wave(2000, seed=3))
        with pytest.raises(StreamError):
            stream.pending_frame_energies()
