"""The float64 golden mode is bitwise-frozen against history.

``tests/golden/float64_baseline.json`` carries sha256 digests captured
*before* the batch-kernel performance work (commit ``0b458b1``). These
tests recompute the same dataset build and T2 trial-group run on
today's code, in the default float64 mode, and compare digests — so
the optimization contract ("faster, not different") is checked against
a fixed historical reference rather than merely batch-vs-scalar.

If a digest mismatch is *intentional* (a reviewed numerical change),
regenerate with ``PYTHONPATH=src python
tests/golden/regen_float64_baseline.py`` and say so in the PR.
"""

import importlib.util
import json
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden"
BASELINE_PATH = GOLDEN_DIR / "float64_baseline.json"

# The regen script is the single source of truth for the digest
# recipes; the tests load it by path (tests/ is not a package) so the
# two can never disagree about what the baseline freezes.
_spec = importlib.util.spec_from_file_location(
    "regen_float64_baseline",
    GOLDEN_DIR / "regen_float64_baseline.py",
)
_regen = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_regen)
dataset_digests = _regen.dataset_digests
t2_digest = _regen.t2_digest


@pytest.fixture(scope="module")
def baseline():
    return json.loads(BASELINE_PATH.read_text())


def test_dataset_digests_match_baseline(baseline):
    features, labels = dataset_digests(baseline["dataset_config"])
    assert features == baseline["features_sha256"], (
        "float64 dataset features drifted from the pre-optimization "
        "baseline; if intentional, rerun "
        "tests/golden/regen_float64_baseline.py"
    )
    assert labels == baseline["labels_sha256"]


def test_t2_outcomes_match_baseline(baseline):
    assert t2_digest(baseline["t2_group"]) == (
        baseline["t2_outcomes_sha256"]
    ), (
        "float64 T2 outcomes drifted from the pre-optimization "
        "baseline; if intentional, rerun "
        "tests/golden/regen_float64_baseline.py"
    )
