"""Unit tests for the multi-source acoustic channel."""

import numpy as np
import pytest

from repro.acoustics.channel import AcousticChannel, PlacedSource
from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.acoustics.spl import pressure_to_spl
from repro.dsp.signals import Unit, tone
from repro.dsp.spectrum import band_power
from repro.errors import GeometryError, SignalDomainError


def _source(frequency, position, duration=0.1):
    wave = tone(frequency, duration, 48000.0, unit=Unit.PASCAL)
    return PlacedSource(wave, position)


class TestPlacedSource:
    def test_requires_pascal(self):
        with pytest.raises(SignalDomainError):
            PlacedSource(tone(100.0, 0.1, 48000.0), Position(0, 0, 0))


class TestReceive:
    def test_single_source_free_field(self, rng):
        channel = AcousticChannel(ambient_noise_spl=None)
        received = channel.receive(
            [_source(1000.0, Position(0, 0, 0))], Position(2, 0, 0)
        )
        assert received.rms() == pytest.approx(
            tone(1000.0, 0.1, 48000.0).rms() / 2.0, rel=0.05
        )

    def test_sources_superpose(self, rng):
        channel = AcousticChannel(
            ambient_noise_spl=None,
            propagation=PropagationModel(include_delay=False),
        )
        receiver = Position(2, 0, 0)
        sources = [
            _source(1000.0, Position(0, 0, 0)),
            _source(3000.0, Position(0, 0.5, 0)),
        ]
        received = channel.receive(sources, receiver)
        assert band_power(received, 900, 1100) > 1e-3
        assert band_power(received, 2900, 3100) > 1e-3

    def test_noise_floor_level(self, rng):
        channel = AcousticChannel(ambient_noise_spl=40.0)
        quiet = _source(1000.0, Position(0, 0, 0))
        quiet = PlacedSource(
            quiet.pressure_at_1m * 1e-9, quiet.position
        )
        received = channel.receive([quiet], Position(1, 0, 0), rng)
        assert pressure_to_spl(received.rms()) == pytest.approx(40.0, abs=2.0)

    def test_noise_requires_rng(self):
        channel = AcousticChannel(ambient_noise_spl=40.0)
        with pytest.raises(SignalDomainError):
            channel.receive(
                [_source(1000.0, Position(0, 0, 0))], Position(1, 0, 0)
            )

    def test_empty_sources_rejected(self, rng):
        channel = AcousticChannel(ambient_noise_spl=None)
        with pytest.raises(SignalDomainError):
            channel.receive([], Position(1, 0, 0))

    def test_mixed_rates_rejected(self, rng):
        channel = AcousticChannel(ambient_noise_spl=None)
        a = _source(1000.0, Position(0, 0, 0))
        b = PlacedSource(
            tone(1000.0, 0.1, 96000.0, unit=Unit.PASCAL),
            Position(0, 1, 0),
        )
        with pytest.raises(SignalDomainError):
            channel.receive([a, b], Position(1, 0, 0))

    def test_coincident_source_receiver_rejected(self, rng):
        channel = AcousticChannel(ambient_noise_spl=None)
        with pytest.raises(GeometryError):
            channel.receive(
                [_source(1000.0, Position(1, 0, 0))], Position(1, 0, 0)
            )

    def test_room_channel_validates_positions(self, rng):
        channel = AcousticChannel(
            room=Room.meeting_room(), ambient_noise_spl=None
        )
        with pytest.raises(GeometryError):
            channel.receive(
                [_source(1000.0, Position(0.5, 2, 1))],
                Position(20.0, 2, 1),
            )

    def test_room_adds_reverberation(self, rng):
        free = AcousticChannel(
            ambient_noise_spl=None,
            propagation=PropagationModel(include_delay=False),
        )
        roomy = AcousticChannel(
            room=Room.meeting_room(),
            ambient_noise_spl=None,
            propagation=PropagationModel(include_delay=False),
        )
        source = [_source(1000.0, Position(1, 2, 1))]
        receiver = Position(4, 2, 1)
        assert (
            roomy.receive(source, receiver).energy()
            > free.receive(source, receiver).energy()
        )

    def test_deterministic_given_seed(self):
        channel = AcousticChannel(ambient_noise_spl=40.0)
        source = [_source(1000.0, Position(0, 0, 0))]
        a = channel.receive(
            source, Position(1, 0, 0), np.random.default_rng(5)
        )
        b = channel.receive(
            source, Position(1, 0, 0), np.random.default_rng(5)
        )
        assert a == b


class TestBatchedTransmission:
    """transmit()'s stacked-FFT fast path must be bitwise scalar.

    Both engine modes route multi-source free-field groups through
    this path, so no CLI diff can catch a drift — only this pin can.
    """

    def _sources(self, n):
        return [
            _source(1000.0 * (i + 1), Position(0.2 * i, 0.0, 0.0))
            for i in range(n)
        ]

    def test_multi_source_transmit_bitwise_equals_per_source_mix(self):
        from repro.dsp.signals import mix

        channel = AcousticChannel(ambient_noise_spl=None)
        sources = self._sources(4)
        receiver = Position(3.0, 0.5, 0.0)
        fast = channel.transmit(sources, receiver)
        slow = mix(
            [
                channel._transmit_one(
                    s.pressure_at_1m, s.position, receiver
                )
                for s in sources
            ]
        )
        assert np.array_equal(fast.samples, slow.samples)

    def test_subclassed_propagation_takes_scalar_path(self):
        class TaggedPropagation(PropagationModel):
            pass

        channel = AcousticChannel(
            ambient_noise_spl=None, propagation=TaggedPropagation()
        )
        other = AcousticChannel(ambient_noise_spl=None)
        sources = self._sources(3)
        receiver = Position(2.0, 0.0, 0.0)
        assert np.array_equal(
            channel.transmit(sources, receiver).samples,
            other.transmit(sources, receiver).samples,
        )

    def test_ambient_batch_rejects_none_generators(self):
        channel = AcousticChannel(ambient_noise_spl=40.0)
        clean = channel.transmit(
            self._sources(1), Position(1.0, 0.0, 0.0)
        )
        with pytest.raises(SignalDomainError, match="generator"):
            channel.ambient_batch(clean, [None])
