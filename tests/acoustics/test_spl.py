"""Unit tests for SPL conversions."""

import pytest

from repro.acoustics.spl import (
    REFERENCE_PRESSURE,
    electrical_to_acoustic_power,
    pressure_to_spl,
    source_power_to_spl_at_1m,
    spl_at_distance,
    spl_to_pressure,
)
from repro.errors import SignalDomainError


class TestPressureSpl:
    def test_reference_pressure_is_zero_db(self):
        assert pressure_to_spl(REFERENCE_PRESSURE) == pytest.approx(0.0)

    def test_one_pascal_is_94_db(self):
        assert pressure_to_spl(1.0) == pytest.approx(93.98, abs=0.01)

    def test_round_trip(self):
        assert pressure_to_spl(spl_to_pressure(73.2)) == pytest.approx(73.2)

    def test_negative_pressure_rejected(self):
        with pytest.raises(SignalDomainError):
            pressure_to_spl(-1.0)


class TestDistanceLaw:
    def test_doubling_distance_costs_6db(self):
        near = spl_at_distance(100.0, 1.0)
        far = spl_at_distance(100.0, 2.0)
        assert near - far == pytest.approx(6.02, abs=0.01)

    def test_absorption_adds_linearly(self):
        no_abs = spl_at_distance(100.0, 10.0, absorption_db_per_m=0.0)
        with_abs = spl_at_distance(100.0, 10.0, absorption_db_per_m=1.0)
        assert no_abs - with_abs == pytest.approx(10.0)

    def test_at_one_meter_only_absorption(self):
        assert spl_at_distance(100.0, 1.0) == pytest.approx(100.0, abs=0.1)

    def test_zero_distance_rejected(self):
        with pytest.raises(SignalDomainError):
            spl_at_distance(100.0, 0.0)


class TestSourcePower:
    def test_one_watt_is_about_109_db(self):
        # Classic engineering rule: 1 W omnidirectional ~ 109 dB @ 1 m.
        assert source_power_to_spl_at_1m(1.0) == pytest.approx(109.0, abs=1.0)

    def test_directivity_adds_on_axis(self):
        omni = source_power_to_spl_at_1m(1.0)
        directed = source_power_to_spl_at_1m(1.0, directivity_index_db=6.0)
        assert directed - omni == pytest.approx(6.0)

    def test_non_positive_power_rejected(self):
        with pytest.raises(SignalDomainError):
            source_power_to_spl_at_1m(0.0)


class TestEfficiency:
    def test_acoustic_power_scales(self):
        assert electrical_to_acoustic_power(10.0, 0.02) == pytest.approx(0.2)

    def test_bad_efficiency_rejected(self):
        with pytest.raises(SignalDomainError):
            electrical_to_acoustic_power(10.0, 1.5)
