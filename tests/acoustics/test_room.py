"""Unit tests for the image-source room model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import interior_positions, rooms
from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.acoustics.room import ImageSourceRoomModel
from repro.dsp.signals import Unit, tone
from repro.errors import GeometryError


@pytest.fixture()
def room_model():
    return ImageSourceRoomModel(
        room=Room.meeting_room(),
        propagation=PropagationModel(include_delay=False),
    )


class TestPaths:
    def test_direct_plus_six_reflections(self, room_model):
        paths = room_model.paths(
            Position(1, 2, 1), Position(4, 2, 1)
        )
        assert len(paths) == 7
        assert paths[0].reflection_count == 0
        assert all(p.reflection_count == 1 for p in paths[1:])

    def test_direct_path_is_shortest(self, room_model):
        paths = room_model.paths(Position(1, 2, 1), Position(4, 2, 1))
        assert paths[0].distance_m == min(p.distance_m for p in paths)

    def test_reflection_amplitudes_attenuated(self, room_model):
        paths = room_model.paths(Position(1, 2, 1), Position(4, 2, 1))
        assert paths[0].amplitude_factor == 1.0
        assert all(p.amplitude_factor < 1.0 for p in paths[1:])

    def test_coincident_positions_rejected(self, room_model):
        with pytest.raises(GeometryError):
            room_model.paths(Position(1, 2, 1), Position(1, 2, 1))

    def test_outside_room_rejected(self, room_model):
        with pytest.raises(GeometryError):
            room_model.paths(Position(-1, 2, 1), Position(4, 2, 1))

    def test_reflections_can_be_disabled(self):
        model = ImageSourceRoomModel(
            room=Room.meeting_room(), include_reflections=False
        )
        paths = model.paths(Position(1, 2, 1), Position(4, 2, 1))
        assert len(paths) == 1


class TestTransmit:
    def test_reverberant_louder_than_free_field(self, room_model):
        wave = tone(1000.0, 0.1, 48000.0, unit=Unit.PASCAL)
        source, receiver = Position(1, 2, 1), Position(4, 2, 1)
        reverberant = room_model.transmit(wave, source, receiver)
        free = ImageSourceRoomModel(
            room=room_model.room, include_reflections=False,
            propagation=room_model.propagation,
        ).transmit(wave, source, receiver)
        # Summed reflections add energy on top of the direct path.
        assert reverberant.energy() > free.energy()

    def test_absorbing_room_closer_to_free_field(self):
        wave = tone(1000.0, 0.1, 48000.0, unit=Unit.PASCAL)
        source, receiver = Position(1, 2, 1), Position(4, 2, 1)

        def energy(absorption):
            model = ImageSourceRoomModel(
                room=Room(6.5, 4.0, 2.5, wall_absorption=absorption),
                propagation=PropagationModel(include_delay=False),
            )
            return model.transmit(wave, source, receiver).energy()

        assert energy(0.9) < energy(0.1)


class TestTransmitBatch:
    """The stacked reflection-fan kernel must be bitwise scalar.

    Room scenarios route through transmit_batch in *both* engine
    modes, so the batch-vs-scalar CLI diff cannot catch a drift
    between the 7-row stacked FFT and per-path propagate + mix — only
    this pin can (the room counterpart of the free-field
    propagate_batch pin in tests/test_properties.py).
    """

    def test_bitwise_equals_transmit(self, room_model):
        wave = tone(1200.0, 0.05, 48000.0, unit=Unit.PASCAL)
        source, receiver = Position(1, 2, 1), Position(4, 2, 1)
        scalar = room_model.transmit(wave, source, receiver)
        batched = room_model.transmit_batch(wave, source, receiver)
        assert np.array_equal(scalar.samples, batched.samples)
        assert scalar.sample_rate == batched.sample_rate
        assert scalar.unit == batched.unit

    def test_bitwise_with_delay_and_long_signal(self):
        # > 64 rfft bins exercises the interpolated-absorption branch;
        # include_delay exercises per-path fractional shifts and the
        # zero-padded fold across unequal row lengths.
        model = ImageSourceRoomModel(room=Room.meeting_room())
        wave = tone(35000.0, 0.03, 192000.0, unit=Unit.PASCAL)
        source, receiver = Position(0.5, 2.0, 1.0), Position(5.5, 1.5, 1.2)
        scalar = model.transmit(wave, source, receiver)
        batched = model.transmit_batch(wave, source, receiver)
        assert np.array_equal(scalar.samples, batched.samples)

    @given(data=st.data(), room=rooms())
    @settings(max_examples=10, deadline=None)
    def test_bitwise_property_over_random_rooms(self, data, room):
        source = data.draw(interior_positions(room))
        receiver = data.draw(interior_positions(room))
        if source.distance_to(receiver) < 1e-6:
            return
        model = ImageSourceRoomModel(room=room)
        wave = tone(900.0, 0.01, 16000.0, unit=Unit.PASCAL)
        scalar = model.transmit(wave, source, receiver)
        batched = model.transmit_batch(wave, source, receiver)
        assert np.array_equal(scalar.samples, batched.samples)

    def test_reflections_disabled_reduces_to_direct(self):
        model = ImageSourceRoomModel(
            room=Room.meeting_room(), include_reflections=False
        )
        wave = tone(1000.0, 0.02, 48000.0, unit=Unit.PASCAL)
        source, receiver = Position(1, 2, 1), Position(4, 2, 1)
        direct = model.propagation.propagate(
            wave, source.distance_to(receiver)
        )
        batched = model.transmit_batch(wave, source, receiver)
        assert np.array_equal(direct.samples, batched.samples)
