"""Unit tests for the image-source room model."""

import pytest

from repro.acoustics.geometry import Position, Room
from repro.acoustics.propagation import PropagationModel
from repro.acoustics.room import ImageSourceRoomModel
from repro.dsp.signals import Unit, tone
from repro.errors import GeometryError


@pytest.fixture()
def room_model():
    return ImageSourceRoomModel(
        room=Room.meeting_room(),
        propagation=PropagationModel(include_delay=False),
    )


class TestPaths:
    def test_direct_plus_six_reflections(self, room_model):
        paths = room_model.paths(
            Position(1, 2, 1), Position(4, 2, 1)
        )
        assert len(paths) == 7
        assert paths[0].reflection_count == 0
        assert all(p.reflection_count == 1 for p in paths[1:])

    def test_direct_path_is_shortest(self, room_model):
        paths = room_model.paths(Position(1, 2, 1), Position(4, 2, 1))
        assert paths[0].distance_m == min(p.distance_m for p in paths)

    def test_reflection_amplitudes_attenuated(self, room_model):
        paths = room_model.paths(Position(1, 2, 1), Position(4, 2, 1))
        assert paths[0].amplitude_factor == 1.0
        assert all(p.amplitude_factor < 1.0 for p in paths[1:])

    def test_coincident_positions_rejected(self, room_model):
        with pytest.raises(GeometryError):
            room_model.paths(Position(1, 2, 1), Position(1, 2, 1))

    def test_outside_room_rejected(self, room_model):
        with pytest.raises(GeometryError):
            room_model.paths(Position(-1, 2, 1), Position(4, 2, 1))

    def test_reflections_can_be_disabled(self):
        model = ImageSourceRoomModel(
            room=Room.meeting_room(), include_reflections=False
        )
        paths = model.paths(Position(1, 2, 1), Position(4, 2, 1))
        assert len(paths) == 1


class TestTransmit:
    def test_reverberant_louder_than_free_field(self, room_model):
        wave = tone(1000.0, 0.1, 48000.0, unit=Unit.PASCAL)
        source, receiver = Position(1, 2, 1), Position(4, 2, 1)
        reverberant = room_model.transmit(wave, source, receiver)
        free = ImageSourceRoomModel(
            room=room_model.room, include_reflections=False,
            propagation=room_model.propagation,
        ).transmit(wave, source, receiver)
        # Summed reflections add energy on top of the direct path.
        assert reverberant.energy() > free.energy()

    def test_absorbing_room_closer_to_free_field(self):
        wave = tone(1000.0, 0.1, 48000.0, unit=Unit.PASCAL)
        source, receiver = Position(1, 2, 1), Position(4, 2, 1)

        def energy(absorption):
            model = ImageSourceRoomModel(
                room=Room(6.5, 4.0, 2.5, wall_absorption=absorption),
                propagation=PropagationModel(include_delay=False),
            )
            return model.transmit(wave, source, receiver).energy()

        assert energy(0.9) < energy(0.1)
