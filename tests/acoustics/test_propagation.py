"""Unit tests for point-to-point propagation."""

import numpy as np
import pytest

from repro.acoustics.propagation import PropagationModel, propagation_loss_db
from repro.acoustics.spl import SPEED_OF_SOUND, pressure_to_spl
from repro.dsp.signals import Unit, multi_tone, tone
from repro.dsp.spectrum import band_power
from repro.errors import SignalDomainError


@pytest.fixture()
def model():
    return PropagationModel(include_delay=False)


class TestLossDb:
    def test_zero_at_one_meter(self):
        assert propagation_loss_db(1000.0, 1.0) == pytest.approx(0.0, abs=0.01)

    def test_spreading_dominates_at_speech(self):
        loss = propagation_loss_db(1000.0, 4.0)
        assert loss == pytest.approx(12.0, abs=0.5)

    def test_absorption_matters_at_ultrasound(self):
        speech = propagation_loss_db(1000.0, 8.0)
        ultra = propagation_loss_db(40000.0, 8.0)
        assert ultra - speech > 5.0

    def test_invalid_distance_rejected(self):
        with pytest.raises(SignalDomainError):
            propagation_loss_db(1000.0, 0.0)


class TestPropagate:
    def test_inverse_square_amplitude(self, model):
        wave = tone(1000.0, 0.2, 48000.0, unit=Unit.PASCAL)
        at_2m = model.propagate(wave, 2.0)
        assert at_2m.rms() == pytest.approx(wave.rms() / 2.0, rel=0.02)

    def test_frequency_selective_absorption(self, model):
        wave = multi_tone(
            [(1000.0, 1.0), (40000.0, 1.0)], 0.3, 192000.0,
            unit=Unit.PASCAL,
        )
        received = model.propagate(wave, 10.0)
        low_loss = 10 * np.log10(
            band_power(wave, 900, 1100)
            / band_power(received, 900, 1100)
        )
        high_loss = 10 * np.log10(
            band_power(wave, 39000, 41000)
            / band_power(received, 39000, 41000)
        )
        # Both see 20 dB of spreading; the ultrasonic tone additionally
        # loses ~1.3 dB/m * 9 m of absorption.
        assert low_loss == pytest.approx(20.0, abs=1.0)
        assert high_loss == pytest.approx(20.0 + 12.0, abs=4.0)

    def test_delay_applied(self):
        model = PropagationModel(include_delay=True)
        wave = tone(1000.0, 0.1, 48000.0, unit=Unit.PASCAL)
        received = model.propagate(wave, SPEED_OF_SOUND)  # exactly 1 s
        assert received.n_samples == pytest.approx(
            wave.n_samples + 48000, abs=2
        )

    def test_time_of_flight(self, model):
        assert model.time_of_flight(343.0) == pytest.approx(1.0, rel=0.01)

    def test_requires_pascal_unit(self, model):
        wave = tone(1000.0, 0.1, 48000.0)  # digital
        with pytest.raises(SignalDomainError):
            model.propagate(wave, 2.0)

    def test_spl_bookkeeping_consistent(self, model):
        wave = tone(1000.0, 0.2, 48000.0, amplitude=1.0, unit=Unit.PASCAL)
        spl_at_1m = pressure_to_spl(wave.rms())
        received = model.propagate(wave, 3.0)
        spl_at_3m = pressure_to_spl(received.rms())
        assert spl_at_1m - spl_at_3m == pytest.approx(
            propagation_loss_db(1000.0, 3.0), abs=0.5
        )


class TestSharedInputBatch:
    def test_shared_spectrum_path_is_bitwise_identical(self):
        import numpy as np

        model = PropagationModel()
        wave = np.random.default_rng(3).normal(size=4096)
        stack = np.tile(wave, (7, 1))
        distances = [1.0, 2.5, 3.3, 4.1, 5.0, 6.2, 7.7]
        plain = model.propagate_batch(stack, 192000.0, distances)
        shared = model.propagate_batch(
            stack, 192000.0, distances, shared_input=True
        )
        assert np.array_equal(plain, shared)
