"""Unit tests for spatial primitives."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import interior_positions, positions, rooms
from repro.acoustics.geometry import Position, Room, distance
from repro.errors import GeometryError


class TestPosition:
    def test_distance(self):
        assert Position(0, 0, 0).distance_to(Position(3, 4, 0)) == 5.0

    def test_distance_symmetric(self):
        a, b = Position(1, 2, 3), Position(-4, 0, 9)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        p = Position(1, 1, 1).translated(1, -1, 0.5)
        assert (p.x, p.y, p.z) == (2.0, 0.0, 1.5)

    def test_mirrored(self):
        p = Position(1, 2, 3).mirrored("x", 0.0)
        assert (p.x, p.y, p.z) == (-1.0, 2.0, 3.0)
        q = Position(1, 2, 3).mirrored("z", 2.5)
        assert q.z == 2.0

    def test_mirror_bad_axis_rejected(self):
        with pytest.raises(GeometryError):
            Position(0, 0, 0).mirrored("w", 1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Position(math.inf, 0, 0)

    def test_module_level_distance(self):
        assert distance(Position(0, 0), Position(0, 2)) == 2.0


class TestRoom:
    def test_contains(self):
        room = Room(6.0, 4.0, 2.5)
        assert room.contains(Position(3, 2, 1))
        assert not room.contains(Position(7, 2, 1))
        assert room.contains(Position(0, 0, 0))  # boundary inclusive

    def test_require_inside_raises_with_context(self):
        room = Room(6.0, 4.0, 2.5)
        with pytest.raises(GeometryError) as excinfo:
            room.require_inside(Position(10, 0, 0), "victim")
        assert "victim" in str(excinfo.value)

    def test_reflection_amplitude(self):
        room = Room(6.0, 4.0, 2.5, wall_absorption=0.75)
        assert room.reflection_amplitude() == pytest.approx(0.5)

    def test_meeting_room_dimensions(self):
        room = Room.meeting_room()
        assert (room.length_m, room.width_m, room.height_m) == (
            6.5,
            4.0,
            2.5,
        )

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            Room(0.0, 4.0, 2.5)

    def test_invalid_absorption_rejected(self):
        with pytest.raises(GeometryError):
            Room(6.0, 4.0, 2.5, wall_absorption=1.5)


class TestGeometryProperties:
    """Hypothesis invariants on the suite-wide geometry strategies."""

    @given(position=positions(), axis=st.sampled_from(["x", "y", "z"]),
           plane=st.floats(min_value=-20.0, max_value=20.0))
    @settings(max_examples=50, deadline=None)
    def test_mirror_is_an_involution(self, position, axis, plane):
        # Approximate, not exact: 2p - (2p - x) loses x entirely when
        # |x| vanishes next to |p| (catastrophic cancellation).
        twice = position.mirrored(axis, plane).mirrored(axis, plane)
        for value, original in (
            (twice.x, position.x),
            (twice.y, position.y),
            (twice.z, position.z),
        ):
            assert value == pytest.approx(original, abs=1e-9)

    @given(a=positions(), b=positions())
    @settings(max_examples=50, deadline=None)
    def test_distance_symmetric_and_nonnegative(self, a, b):
        assert a.distance_to(b) == b.distance_to(a)
        assert a.distance_to(b) >= 0.0

    @given(data=st.data(), room=rooms())
    @settings(max_examples=25, deadline=None)
    def test_interior_positions_are_inside(self, data, room):
        inside = data.draw(interior_positions(room))
        assert room.contains(inside)
        room.require_inside(inside, "sample")  # must not raise

    @given(room=rooms())
    @settings(max_examples=25, deadline=None)
    def test_reflection_amplitude_bounded(self, room):
        assert 0.0 <= room.reflection_amplitude() <= 1.0
