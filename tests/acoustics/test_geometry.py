"""Unit tests for spatial primitives."""

import math

import pytest

from repro.acoustics.geometry import Position, Room, distance
from repro.errors import GeometryError


class TestPosition:
    def test_distance(self):
        assert Position(0, 0, 0).distance_to(Position(3, 4, 0)) == 5.0

    def test_distance_symmetric(self):
        a, b = Position(1, 2, 3), Position(-4, 0, 9)
        assert a.distance_to(b) == b.distance_to(a)

    def test_translated(self):
        p = Position(1, 1, 1).translated(1, -1, 0.5)
        assert (p.x, p.y, p.z) == (2.0, 0.0, 1.5)

    def test_mirrored(self):
        p = Position(1, 2, 3).mirrored("x", 0.0)
        assert (p.x, p.y, p.z) == (-1.0, 2.0, 3.0)
        q = Position(1, 2, 3).mirrored("z", 2.5)
        assert q.z == 2.0

    def test_mirror_bad_axis_rejected(self):
        with pytest.raises(GeometryError):
            Position(0, 0, 0).mirrored("w", 1.0)

    def test_non_finite_rejected(self):
        with pytest.raises(GeometryError):
            Position(math.inf, 0, 0)

    def test_module_level_distance(self):
        assert distance(Position(0, 0), Position(0, 2)) == 2.0


class TestRoom:
    def test_contains(self):
        room = Room(6.0, 4.0, 2.5)
        assert room.contains(Position(3, 2, 1))
        assert not room.contains(Position(7, 2, 1))
        assert room.contains(Position(0, 0, 0))  # boundary inclusive

    def test_require_inside_raises_with_context(self):
        room = Room(6.0, 4.0, 2.5)
        with pytest.raises(GeometryError) as excinfo:
            room.require_inside(Position(10, 0, 0), "victim")
        assert "victim" in str(excinfo.value)

    def test_reflection_amplitude(self):
        room = Room(6.0, 4.0, 2.5, wall_absorption=0.75)
        assert room.reflection_amplitude() == pytest.approx(0.5)

    def test_meeting_room_dimensions(self):
        room = Room.meeting_room()
        assert (room.length_m, room.width_m, room.height_m) == (
            6.5,
            4.0,
            2.5,
        )

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(GeometryError):
            Room(0.0, 4.0, 2.5)

    def test_invalid_absorption_rejected(self):
        with pytest.raises(GeometryError):
            Room(6.0, 4.0, 2.5, wall_absorption=1.5)
