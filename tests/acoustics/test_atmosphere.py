"""Unit tests for ISO 9613-1 atmospheric absorption."""

import pytest

from repro.acoustics.atmosphere import (
    AtmosphericConditions,
    absorption_coefficient_db_per_m,
    absorption_over_path_db,
)
from repro.errors import SignalDomainError


class TestReferenceValues:
    """Spot checks against published ISO 9613-1 magnitudes
    (20 °C, 50-70 % RH, sea level)."""

    def test_1khz_order_of_magnitude(self):
        alpha = absorption_coefficient_db_per_m(1000.0)
        assert 0.003 < alpha < 0.008

    def test_10khz_order_of_magnitude(self):
        alpha = absorption_coefficient_db_per_m(10000.0)
        assert 0.1 < alpha < 0.3

    def test_40khz_ultrasound(self):
        alpha = absorption_coefficient_db_per_m(40000.0)
        assert 0.8 < alpha < 2.0

    def test_monotonic_in_frequency(self):
        alphas = [
            absorption_coefficient_db_per_m(f)
            for f in (250.0, 1000.0, 4000.0, 16000.0, 40000.0, 60000.0)
        ]
        assert all(a < b for a, b in zip(alphas, alphas[1:]))

    def test_ultrasound_absorbs_far_more_than_speech(self):
        speech = absorption_coefficient_db_per_m(1000.0)
        ultra = absorption_coefficient_db_per_m(40000.0)
        assert ultra / speech > 100


class TestConditions:
    def test_dry_air_absorbs_more_at_ultrasound(self):
        humid = absorption_coefficient_db_per_m(
            40000.0, AtmosphericConditions(relative_humidity=80.0)
        )
        dry = absorption_coefficient_db_per_m(
            40000.0, AtmosphericConditions(relative_humidity=10.0)
        )
        assert dry != humid  # humidity matters at ultrasound

    def test_invalid_humidity_rejected(self):
        with pytest.raises(SignalDomainError):
            AtmosphericConditions(relative_humidity=150.0)

    def test_invalid_temperature_rejected(self):
        with pytest.raises(SignalDomainError):
            AtmosphericConditions(temperature_c=100.0)

    def test_invalid_pressure_rejected(self):
        with pytest.raises(SignalDomainError):
            AtmosphericConditions(pressure_kpa=-1.0)


class TestPath:
    def test_path_scaling(self):
        per_meter = absorption_coefficient_db_per_m(30000.0)
        assert absorption_over_path_db(30000.0, 5.0) == pytest.approx(
            5 * per_meter
        )

    def test_zero_path_is_zero(self):
        assert absorption_over_path_db(30000.0, 0.0) == 0.0

    def test_negative_frequency_rejected(self):
        with pytest.raises(SignalDomainError):
            absorption_coefficient_db_per_m(-100.0)
