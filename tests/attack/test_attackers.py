"""Unit tests for the attacker orchestration classes."""

import pytest

from repro.acoustics.geometry import Position
from repro.attack.array import grid_array
from repro.attack.attacker import LongRangeAttacker, SingleSpeakerAttacker
from repro.attack.baselines import AudiblePlaybackAttacker
from repro.dsp.signals import Unit
from repro.hardware.devices import horn_tweeter, ultrasonic_piezo_element
from repro.psychoacoustics.audibility import evaluate_audibility
from repro.errors import AttackConfigError

ORIGIN = Position(0.0, 2.0, 1.0)


class TestSingleSpeakerAttacker:
    def test_emit_produces_one_source(self, alexa_voice):
        attacker = SingleSpeakerAttacker(horn_tweeter(), ORIGIN)
        emission = attacker.emit(alexa_voice, drive_level=0.5)
        assert len(emission.sources) == 1
        assert emission.sources[0].pressure_at_1m.unit == Unit.PASCAL
        assert emission.drive_level == 0.5

    def test_emit_inaudibly_caps_drive(self, alexa_voice):
        attacker = SingleSpeakerAttacker(horn_tweeter(), ORIGIN)
        emission = attacker.emit_inaudibly(alexa_voice)
        assert 0 < emission.drive_level < 0.5


class TestLongRangeAttacker:
    @pytest.fixture(scope="class")
    def emission(self, alexa_voice):
        array = grid_array(10, ORIGIN, ultrasonic_piezo_element)
        return LongRangeAttacker(array).emit(alexa_voice)

    def test_element_budget(self, alexa_voice):
        array = grid_array(10, ORIGIN, ultrasonic_piezo_element)
        attacker = LongRangeAttacker(array, carrier_fraction=0.4)
        assert attacker.n_carrier == 4
        assert attacker.splitter.n_chunks == 6

    def test_all_sources_placed_and_pascal(self, emission):
        for source in emission.sources:
            assert source.pressure_at_1m.unit == Unit.PASCAL

    def test_no_source_is_audible(self, emission):
        # The defining property of the long-range attack: EVERY radiated
        # waveform is individually inaudible at 1 m.
        for source in emission.sources:
            report = evaluate_audibility(source.pressure_at_1m)
            assert report.margin_db < 3.0

    def test_carrier_sources_are_tones(self, emission, alexa_voice):
        array = grid_array(10, ORIGIN, ultrasonic_piezo_element)
        attacker = LongRangeAttacker(array)
        n_carrier = attacker.n_carrier
        from repro.dsp.spectrum import welch_psd

        for source in emission.sources[:n_carrier]:
            psd = welch_psd(
                source.pressure_at_1m, segment_length=16384
            )
            assert psd.peak_frequency() == pytest.approx(
                40000.0, abs=100.0
            )

    def test_invalid_carrier_fraction_rejected(self):
        array = grid_array(4, ORIGIN, ultrasonic_piezo_element)
        with pytest.raises(AttackConfigError):
            LongRangeAttacker(array, carrier_fraction=0.0)

    def test_array_too_small_rejected(self):
        array = grid_array(1, ORIGIN, ultrasonic_piezo_element)
        with pytest.raises(AttackConfigError):
            LongRangeAttacker(array, carrier_fraction=0.9)


class TestAudiblePlayback:
    def test_emission_level(self, alexa_voice):
        playback = AudiblePlaybackAttacker(ORIGIN, speech_spl_at_1m=60.0)
        emission = playback.emit(alexa_voice)
        from repro.acoustics.spl import pressure_to_spl

        spl = pressure_to_spl(
            emission.sources[0].pressure_at_1m.rms()
        )
        assert spl == pytest.approx(60.0, abs=0.5)

    def test_playback_is_audible(self, alexa_voice):
        playback = AudiblePlaybackAttacker(ORIGIN, speech_spl_at_1m=60.0)
        emission = playback.emit(alexa_voice)
        assert evaluate_audibility(
            emission.sources[0].pressure_at_1m
        ).is_audible

    def test_implausible_level_rejected(self):
        with pytest.raises(AttackConfigError):
            AudiblePlaybackAttacker(ORIGIN, speech_spl_at_1m=120.0)
