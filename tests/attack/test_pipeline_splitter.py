"""Unit tests for the attack pipeline and the spectral splitter."""

import numpy as np
import pytest

from repro.attack.pipeline import AttackPipeline, AttackPipelineConfig
from repro.attack.splitter import SpectralSplitter
from repro.dsp.spectrum import band_power, welch_psd
from repro.errors import AttackConfigError


class TestPipelineConfig:
    def test_defaults_are_inaudible(self):
        config = AttackPipelineConfig()
        assert config.carrier_hz - config.voice_cutoff_hz >= 20000.0

    def test_audible_lower_sideband_rejected(self):
        with pytest.raises(AttackConfigError):
            AttackPipelineConfig(carrier_hz=24000.0, voice_cutoff_hz=8000.0)

    def test_sideband_above_nyquist_rejected(self):
        with pytest.raises(AttackConfigError):
            AttackPipelineConfig(
                carrier_hz=94000.0, voice_cutoff_hz=8000.0,
                acoustic_rate=192000.0,
            )

    def test_bad_depth_rejected(self):
        with pytest.raises(AttackConfigError):
            AttackPipelineConfig(modulation_depth=2.0)


class TestPipeline:
    def test_output_normalised_at_acoustic_rate(self, ok_google_voice):
        drive = AttackPipeline().generate(ok_google_voice)
        assert drive.sample_rate == 192000.0
        assert drive.peak() == pytest.approx(1.0, abs=0.02)

    def test_output_entirely_ultrasonic(self, ok_google_voice):
        drive = AttackPipeline().generate(ok_google_voice)
        psd = welch_psd(drive, segment_length=16384)
        audible = psd.band_power(20, 20000)
        ultrasonic = psd.band_power(20000, 96000)
        assert audible < ultrasonic * 1e-6

    def test_spectrum_centered_on_carrier(self, ok_google_voice):
        config = AttackPipelineConfig(carrier_hz=32000.0)
        drive = AttackPipeline(config).generate(ok_google_voice)
        assert welch_psd(
            drive, segment_length=16384
        ).peak_frequency() == pytest.approx(32000.0, abs=200.0)

    def test_square_law_recovers_command(self, ok_google_voice):
        from repro.dsp.measures import residual_snr_db
        from repro.dsp.modulation import am_demodulate_square_law

        pipeline = AttackPipeline()
        drive = pipeline.generate(ok_google_voice)
        recovered = am_demodulate_square_law(drive, cutoff_hz=8000.0)
        reference = pipeline.prepare_baseband(ok_google_voice)
        assert residual_snr_db(reference, recovered) > 6.0

    def test_non_digital_input_rejected(self, ok_google_voice):
        from repro.dsp.signals import Unit

        pipeline = AttackPipeline()
        with pytest.raises(AttackConfigError):
            pipeline.generate(ok_google_voice.with_unit(Unit.PASCAL))


class TestSplitter:
    def test_chunk_count_and_bandwidth(self, ok_google_voice):
        splitter = SpectralSplitter(n_chunks=8)
        plan = splitter.split(ok_google_voice)
        assert len(plan.chunks) == 8
        assert plan.carrier is not None
        assert plan.n_speakers == 9
        expected_bw = 2 * 3000.0 / 8
        assert plan.chunk_bandwidth_hz() == pytest.approx(expected_bw)

    def test_chunks_are_band_limited(self, ok_google_voice):
        splitter = SpectralSplitter(n_chunks=4)
        plan = splitter.split(ok_google_voice)
        for chunk in plan.chunks:
            low, high = chunk.band_hz
            psd = welch_psd(chunk.drive, segment_length=32768)
            inside = psd.band_power(low, high)
            outside = psd.total_power() - inside
            assert inside > 10 * max(outside, 1e-30)

    def test_reconstruction_is_exact(self, ok_google_voice):
        # Splitting must be a pure spatial re-arrangement: within the
        # split band, the sum of de-normalised chunks plus the carrier
        # equals the single modulated waveform bin-for-bin. (Content
        # outside [f_c - W, f_c + W] — filter skirts and fade
        # transients — is deliberately not radiated by any chunk.)
        splitter = SpectralSplitter(n_chunks=6)
        plan = splitter.split(ok_google_voice)
        rebuilt = splitter.reconstruct(plan)
        from repro.dsp.modulation import dsb_sc_modulate

        pipeline = splitter._pipeline
        baseband = pipeline.prepare_baseband(ok_google_voice)
        reference = dsb_sc_modulate(
            baseband, splitter.config.carrier_hz,
            bandwidth_hz=splitter.config.voice_cutoff_hz,
        ).faded(splitter.config.fade_s) + plan.carrier
        low = splitter.config.carrier_hz - splitter.config.voice_cutoff_hz
        high = splitter.config.carrier_hz + splitter.config.voice_cutoff_hz
        spec_rebuilt = np.fft.rfft(rebuilt.samples)
        spec_reference = np.fft.rfft(reference.samples)
        freqs = np.fft.rfftfreq(
            rebuilt.n_samples, d=1.0 / rebuilt.sample_rate
        )
        in_band = (freqs >= low) & (freqs <= high)
        error = np.max(
            np.abs(spec_rebuilt[in_band] - spec_reference[in_band])
        )
        scale = np.max(np.abs(spec_reference[in_band]))
        assert error < 1e-9 * scale

    def test_narrow_chunk_self_product_stays_low_frequency(
        self, ok_google_voice
    ):
        # The inaudibility mechanism: a chunk's square has baseband
        # content only below its own bandwidth (plus ultrasound).
        splitter = SpectralSplitter(n_chunks=30)
        plan = splitter.split(ok_google_voice)
        chunk = plan.chunks[len(plan.chunks) // 2]
        squared = chunk.drive.replace(
            samples=np.square(chunk.drive.samples)
        )
        bw = chunk.bandwidth_hz
        near_dc = band_power(squared, 1.0, bw * 1.2)
        audible_rest = band_power(squared, bw * 1.5, 18000.0)
        assert near_dc > 30 * max(audible_rest, 1e-30)

    def test_mixed_carrier_mode(self, ok_google_voice):
        splitter = SpectralSplitter(n_chunks=4, separate_carrier=False)
        plan = splitter.split(ok_google_voice)
        assert plan.carrier is None
        assert plan.n_speakers == 4
        # Every chunk now contains carrier power.
        for chunk in plan.chunks:
            psd = welch_psd(chunk.drive, segment_length=32768)
            carrier_power = psd.band_power(39950, 40050)
            assert carrier_power > 0

    def test_invalid_chunk_count_rejected(self):
        with pytest.raises(AttackConfigError):
            SpectralSplitter(n_chunks=0)
