"""Unit tests for leakage analysis, arrays and drive allocation."""

import pytest

from repro.acoustics.geometry import Position
from repro.attack.array import SpeakerArray, grid_array, linear_array
from repro.attack.leakage import (
    audible_leakage,
    leakage_report,
    max_inaudible_drive,
)
from repro.attack.optimizer import allocate_drive_levels
from repro.attack.pipeline import AttackPipeline
from repro.attack.splitter import SpectralSplitter
from repro.hardware.devices import horn_tweeter, ultrasonic_piezo_element
from repro.errors import AttackConfigError


@pytest.fixture(scope="module")
def am_drive(session_rng=None):
    import numpy as np

    from repro.speech.commands import synthesize_command

    rng = np.random.default_rng(11)
    voice = synthesize_command("alexa", rng)
    return AttackPipeline().generate(voice)


class TestLeakage:
    def test_full_drive_tweeter_leaks_audibly(self, am_drive):
        report = leakage_report(horn_tweeter(), am_drive, 1.0, 0.5)
        assert report.is_audible
        assert report.margin_db > 10.0

    def test_leakage_waveform_is_audible_band_only(self, am_drive):
        from repro.dsp.spectrum import welch_psd

        leak = audible_leakage(horn_tweeter(), am_drive, 1.0, 0.5)
        psd = welch_psd(leak, segment_length=16384)
        assert psd.band_power(21000, 90000) < psd.band_power(100, 20000)

    def test_leakage_decreases_with_distance(self, am_drive):
        near = leakage_report(horn_tweeter(), am_drive, 1.0, 0.5)
        far = leakage_report(horn_tweeter(), am_drive, 1.0, 4.0)
        assert far.margin_db < near.margin_db

    def test_max_inaudible_drive_is_inaudible(self, am_drive):
        speaker = horn_tweeter()
        level = max_inaudible_drive(speaker, am_drive, 0.5)
        assert 0 < level < 1
        report = leakage_report(speaker, am_drive, level, 0.5)
        assert report.margin_db <= 1.0  # within tolerance of threshold

    def test_quiet_waveform_unconstrained(self):
        from repro.dsp.signals import tone

        speaker = ultrasonic_piezo_element()
        pure_carrier = tone(40000.0, 0.3, 192000.0)
        assert max_inaudible_drive(speaker, pure_carrier, 0.5) == 1.0

    def test_invalid_distance_rejected(self, am_drive):
        with pytest.raises(AttackConfigError):
            leakage_report(horn_tweeter(), am_drive, 1.0, 0.0)


class TestArrays:
    def test_linear_array_layout(self):
        array = linear_array(
            5, Position(0, 0, 1), ultrasonic_piezo_element,
            spacing_m=0.1,
        )
        assert array.n_elements == 5
        ys = [e.position.y for e in array.elements]
        assert ys == sorted(ys)
        assert max(ys) - min(ys) == pytest.approx(0.4)

    def test_grid_array_compactness(self):
        array = grid_array(61, Position(0, 0, 1), ultrasonic_piezo_element)
        centroid = array.centroid()
        max_distance = max(
            e.position.distance_to(centroid) for e in array.elements
        )
        assert max_distance < 0.3  # a panel, not a fence

    def test_centroid(self):
        array = linear_array(3, Position(1, 2, 3), ultrasonic_piezo_element)
        c = array.centroid()
        assert (c.x, c.y, c.z) == (1.0, 2.0, 3.0)

    def test_total_power(self):
        array = grid_array(4, Position(0, 0, 0), ultrasonic_piezo_element)
        assert array.total_rated_power_w() == pytest.approx(8.0)

    def test_empty_array_rejected(self):
        with pytest.raises(AttackConfigError):
            SpeakerArray(elements=())

    def test_invalid_counts_rejected(self):
        with pytest.raises(AttackConfigError):
            linear_array(0, Position(0, 0, 0), ultrasonic_piezo_element)
        with pytest.raises(AttackConfigError):
            grid_array(0, Position(0, 0, 0), ultrasonic_piezo_element)


class TestAllocator:
    @pytest.fixture(scope="class")
    def plan(self):
        import numpy as np

        from repro.speech.commands import synthesize_command

        voice = synthesize_command("alexa", np.random.default_rng(12))
        return SpectralSplitter(n_chunks=4).split(voice)

    @pytest.fixture(scope="class")
    def array(self):
        return grid_array(
            5, Position(0, 0, 1), ultrasonic_piezo_element
        )

    def test_uniform_preserves_spectral_shape(self, plan, array):
        allocation = allocate_drive_levels(plan, array, "uniform")
        effective = [
            level * chunk.gain_headroom
            for level, chunk in zip(allocation.chunk_levels, plan.chunks)
        ]
        assert max(effective) == pytest.approx(min(effective), rel=1e-6)

    def test_waterfill_delivers_at_least_uniform(self, plan, array):
        uniform = allocate_drive_levels(plan, array, "uniform")
        waterfill = allocate_drive_levels(plan, array, "waterfill")
        for lo, hi in zip(uniform.chunk_levels, waterfill.chunk_levels):
            assert hi >= lo - 1e-9

    def test_waterfill_respects_boost_limit(self, plan, array):
        uniform = allocate_drive_levels(plan, array, "uniform")
        boosted = allocate_drive_levels(
            plan, array, "waterfill", boost_limit=2.0
        )
        for b, u in zip(boosted.chunk_levels, uniform.chunk_levels):
            assert b <= 2.0 * u + 1e-9

    def test_levels_within_hardware_bounds(self, plan, array):
        for strategy in ("uniform", "waterfill"):
            allocation = allocate_drive_levels(plan, array, strategy)
            assert all(0 <= lv <= 1 for lv in allocation.chunk_levels)
            assert 0 < allocation.carrier_level <= 1

    def test_too_small_array_rejected(self, plan):
        tiny = grid_array(2, Position(0, 0, 1), ultrasonic_piezo_element)
        with pytest.raises(AttackConfigError):
            allocate_drive_levels(plan, tiny, "uniform")

    def test_unknown_strategy_rejected(self, plan, array):
        with pytest.raises(AttackConfigError):
            allocate_drive_levels(plan, array, "maximal")

    def test_bad_boost_limit_rejected(self, plan, array):
        with pytest.raises(AttackConfigError):
            allocate_drive_levels(
                plan, array, "waterfill", boost_limit=0.5
            )
