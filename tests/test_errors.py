"""Tests for the exception hierarchy and the package surface."""

import pytest

import repro
from repro.errors import (
    AttackConfigError,
    DefenseError,
    ExperimentError,
    FilterDesignError,
    GeometryError,
    HardwareModelError,
    ModulationError,
    RecognitionError,
    ReproError,
    SampleRateError,
    SignalDomainError,
    SynthesisError,
)

ALL_ERRORS = [
    SampleRateError,
    SignalDomainError,
    FilterDesignError,
    ModulationError,
    GeometryError,
    HardwareModelError,
    SynthesisError,
    RecognitionError,
    AttackConfigError,
    DefenseError,
    ExperimentError,
]


class TestHierarchy:
    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_all_derive_from_repro_error(self, error_type):
        assert issubclass(error_type, ReproError)

    @pytest.mark.parametrize("error_type", ALL_ERRORS)
    def test_catchable_as_repro_error(self, error_type):
        with pytest.raises(ReproError):
            raise error_type("boom")

    def test_library_failures_are_repro_errors(self):
        # A representative failure from each layer is catchable with
        # one except clause — the property the hierarchy exists for.
        from repro.dsp.signals import Signal

        with pytest.raises(ReproError):
            Signal([1.0], -1.0)
        with pytest.raises(ReproError):
            repro.Position(0, 0, 0).mirrored("q", 0.0)


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_key_classes_importable_from_top_level(self):
        assert repro.SingleSpeakerAttacker is not None
        assert repro.LongRangeAttacker is not None
        assert repro.InaudibleVoiceDetector is not None
        assert repro.KeywordRecognizer is not None
