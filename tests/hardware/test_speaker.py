"""Unit tests for the ultrasonic speaker model."""

import numpy as np
import pytest

from repro.acoustics.spl import pressure_to_spl
from repro.dsp.modulation import am_modulate
from repro.dsp.signals import Unit, tone
from repro.dsp.spectrum import band_power
from repro.hardware.devices import horn_tweeter, ultrasonic_piezo_element
from repro.hardware.speaker import SpeakerConfig, UltrasonicSpeaker
from repro.errors import HardwareModelError, SignalDomainError

RATE = 192000.0


def _am_drive(message_hz=1000.0, carrier_hz=40000.0, duration=0.3):
    message = tone(message_hz, duration, RATE)
    modulated = am_modulate(message, carrier_hz, bandwidth_hz=2000.0)
    return modulated.scaled_to_peak(1.0)


class TestPlay:
    def test_output_is_pressure(self):
        speaker = ultrasonic_piezo_element()
        out = speaker.play(tone(30000.0, 0.1, RATE))
        assert out.unit == Unit.PASCAL

    def test_full_drive_reaches_rated_spl(self):
        speaker = ultrasonic_piezo_element()
        out = speaker.play(tone(30000.0, 0.2, RATE))
        rated = speaker.config.max_spl_at_1m
        assert pressure_to_spl(out.rms()) == pytest.approx(rated, abs=1.5)

    def test_drive_level_scales_output(self):
        speaker = ultrasonic_piezo_element()
        drive = tone(30000.0, 0.2, RATE)
        full = speaker.play(drive, 1.0)
        half = speaker.play(drive, 0.5)
        # Linear part halves; SPL drops ~6 dB.
        assert pressure_to_spl(full.rms()) - pressure_to_spl(
            half.rms()
        ) == pytest.approx(6.0, abs=0.5)

    def test_out_of_band_content_attenuated(self):
        speaker = ultrasonic_piezo_element()
        low, _ = speaker.config.passband_hz
        in_band = speaker.play(tone(30000.0, 0.2, RATE))
        out_band = speaker.play(tone(5000.0, 0.2, RATE))
        assert pressure_to_spl(in_band.rms()) - pressure_to_spl(
            out_band.rms()
        ) > speaker.config.out_of_band_rejection_db

    def test_rolloff_grows_with_distance_from_band(self):
        speaker = ultrasonic_piezo_element()
        at_5k = speaker.play(tone(5000.0, 0.2, RATE))
        at_500 = speaker.play(tone(500.0, 0.2, RATE))
        extra_db = pressure_to_spl(at_5k.rms()) - pressure_to_spl(
            at_500.rms()
        )
        octaves = np.log2(5000.0 / 500.0)
        expected = octaves * speaker.config.rolloff_db_per_octave
        assert extra_db == pytest.approx(expected, abs=3.0)

    def test_overdriven_waveform_rejected(self):
        speaker = ultrasonic_piezo_element()
        with pytest.raises(HardwareModelError):
            speaker.play(tone(30000.0, 0.1, RATE, amplitude=1.5))

    def test_wrong_unit_rejected(self):
        speaker = ultrasonic_piezo_element()
        with pytest.raises(SignalDomainError):
            speaker.play(
                tone(30000.0, 0.1, RATE, unit=Unit.PASCAL)
            )

    def test_bad_drive_level_rejected(self):
        speaker = ultrasonic_piezo_element()
        drive = tone(30000.0, 0.1, RATE)
        with pytest.raises(HardwareModelError):
            speaker.play(drive, 0.0)
        with pytest.raises(HardwareModelError):
            speaker.play(drive, 1.2)


class TestLeakagePhysics:
    def test_am_drive_leaks_demodulated_baseband(self):
        speaker = horn_tweeter()
        out = speaker.play(_am_drive())
        # The driver's quadratic term demodulates the 1 kHz message.
        assert band_power(out, 900, 1100) > 0

    def test_linearised_speaker_leaks_far_less(self):
        speaker = horn_tweeter()
        clean = speaker.linear_only()
        drive = _am_drive()
        leak_nl = band_power(speaker.play(drive), 900, 1100)
        leak_lin = band_power(clean.play(drive), 900, 1100)
        assert leak_nl > 100 * leak_lin

    def test_leakage_grows_faster_than_signal(self):
        speaker = horn_tweeter()
        drive = _am_drive()
        leak_full = band_power(speaker.play(drive, 1.0), 900, 1100)
        leak_half = band_power(speaker.play(drive, 0.5), 900, 1100)
        # Quadratic: half drive => leakage power falls ~12 dB, not 6.
        ratio_db = 10 * np.log10(leak_full / leak_half)
        assert ratio_db == pytest.approx(12.0, abs=2.0)

    def test_pure_carrier_leaks_no_audible_tone(self):
        speaker = ultrasonic_piezo_element()
        out = speaker.play(tone(40000.0, 0.2, RATE))
        # Squared pure tone = DC + 80 kHz; the audible band gets at most
        # rolloff-floor residue.
        audible = band_power(out, 100, 15000)
        total = out.rms() ** 2
        assert audible < total * 1e-4


class TestPower:
    def test_drive_level_for_power(self):
        speaker = ultrasonic_piezo_element()  # rated 2 W
        assert speaker.drive_level_for_power(2.0) == pytest.approx(1.0)
        assert speaker.drive_level_for_power(0.5) == pytest.approx(0.5)

    def test_over_rated_power_rejected(self):
        speaker = ultrasonic_piezo_element()
        with pytest.raises(HardwareModelError):
            speaker.drive_level_for_power(5.0)

    def test_play_with_power(self):
        speaker = ultrasonic_piezo_element()
        drive = tone(30000.0, 0.1, RATE)
        a = speaker.play_with_power(drive, 0.5)
        b = speaker.play(drive, 0.5)
        assert a == b


class TestConfigValidation:
    def test_invalid_passband_rejected(self):
        with pytest.raises(HardwareModelError):
            SpeakerConfig(passband_hz=(50000.0, 30000.0))

    def test_invalid_spl_rejected(self):
        with pytest.raises(HardwareModelError):
            SpeakerConfig(max_spl_at_1m=200.0)

    def test_passband_above_nyquist_rejected(self):
        speaker = UltrasonicSpeaker(
            SpeakerConfig(passband_hz=(44000.0, 60000.0))
        )
        with pytest.raises(HardwareModelError):
            speaker.play(tone(1000.0, 0.1, 48000.0))
