"""Tests for the calibrated device presets and their orderings."""

import numpy as np

from repro.acoustics.spl import spl_to_pressure
from repro.dsp.modulation import am_modulate
from repro.dsp.signals import Unit, tone
from repro.dsp.spectrum import band_power
from repro.hardware.devices import (
    amazon_echo_microphone,
    android_phone_microphone,
    horn_tweeter,
    ideal_linear_microphone,
    ultrasonic_piezo_element,
)

RATE = 192000.0


def _am_ultrasound(spl=100.0):
    message = tone(1000.0, 0.3, RATE)
    modulated = am_modulate(message, 40000.0, bandwidth_hz=2000.0)
    peak = spl_to_pressure(spl) * np.sqrt(2)
    return modulated.scaled_to_peak(peak).with_unit(Unit.PASCAL)


class TestMicrophonePresets:
    def test_device_rates(self):
        assert android_phone_microphone().config.device_rate == 48000.0
        assert amazon_echo_microphone().config.device_rate == 16000.0

    def test_phone_demodulates_more_than_echo(self):
        # The device ordering every attack table relies on: the exposed
        # phone microphone receives (and demodulates) more ultrasound
        # than the covered echo microphone.
        wave = _am_ultrasound()
        phone = android_phone_microphone().record(
            wave, np.random.default_rng(1)
        )
        echo = amazon_echo_microphone().record(
            wave, np.random.default_rng(1)
        )
        assert band_power(phone, 900, 1100) > band_power(echo, 900, 1100)

    def test_linear_preset_is_linear(self):
        assert ideal_linear_microphone().config.nonlinearity.is_linear()

    def test_nonlinear_presets_are_not(self):
        assert not android_phone_microphone().config.nonlinearity.is_linear()
        assert not amazon_echo_microphone().config.nonlinearity.is_linear()

    def test_presets_are_independent_instances(self):
        a = android_phone_microphone()
        b = android_phone_microphone()
        assert a is not b
        assert a.config == b.config


class TestSpeakerPresets:
    def test_tweeter_more_powerful_than_piezo(self):
        tweeter = horn_tweeter()
        piezo = ultrasonic_piezo_element()
        assert (
            tweeter.config.max_electrical_power_w
            > piezo.config.max_electrical_power_w
        )
        assert tweeter.config.max_spl_at_1m > piezo.config.max_spl_at_1m

    def test_piezo_passband_is_ultrasonic(self):
        low, high = ultrasonic_piezo_element().config.passband_hz
        assert low > 20000.0
        assert high > low

    def test_tweeter_passband_reaches_audible(self):
        low, _ = horn_tweeter().config.passband_hz
        assert low < 20000.0

    def test_both_speakers_nonlinear(self):
        assert not horn_tweeter().config.nonlinearity.is_linear()
        assert not ultrasonic_piezo_element().config.nonlinearity.is_linear()

    def test_device_ordering_attack_range(self):
        # Sanity cross-check of the calibration: the piezo's rated SPL
        # at full drive must be below the tweeter's, so the long-range
        # attack's advantage comes from element count, not a stronger
        # element.
        piezo = ultrasonic_piezo_element()
        tweeter = horn_tweeter()
        drive = tone(30000.0, 0.2, RATE)
        p_piezo = piezo.play(drive).rms()
        p_tweeter = tweeter.play(drive).rms()
        assert p_tweeter > p_piezo
