"""Unit tests for the microphone chain — the attack's enabling device."""

import numpy as np
import pytest

from repro.acoustics.spl import spl_to_pressure
from repro.dsp.modulation import am_modulate
from repro.dsp.signals import Unit, tone
from repro.dsp.spectrum import band_power, welch_psd
from repro.hardware.devices import (
    android_phone_microphone,
    ideal_linear_microphone,
)
from repro.hardware.microphone import Microphone, MicrophoneConfig
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.errors import HardwareModelError, SignalDomainError

RATE = 192000.0


def _pressure_tone(frequency, spl, duration=0.2):
    rms = spl_to_pressure(spl)
    return tone(
        frequency, duration, RATE, amplitude=rms * np.sqrt(2),
        unit=Unit.PASCAL,
    )


def _am_ultrasound(spl=100.0, message_hz=1000.0, carrier_hz=40000.0):
    message = tone(message_hz, 0.3, RATE)
    modulated = am_modulate(message, carrier_hz, bandwidth_hz=2000.0)
    target_peak = spl_to_pressure(spl) * np.sqrt(2)
    return modulated.scaled_to_peak(target_peak).with_unit(Unit.PASCAL)


class TestBasicRecording:
    def test_audible_tone_recorded_at_device_rate(self, rng):
        mic = android_phone_microphone()
        recording = mic.record(_pressure_tone(1000.0, 70.0), rng)
        assert recording.sample_rate == 48000.0
        assert recording.unit == Unit.DIGITAL
        assert band_power(recording, 900, 1100) > 1e-8

    def test_level_mapping(self, rng):
        mic = android_phone_microphone()
        recording = mic.record(_pressure_tone(1000.0, 94.0), rng)
        # 94 dB SPL = 1 Pa rms. Full scale (digital 1.0) is the PEAK of
        # a 120 dB SPL sine, i.e. sqrt(2) * 20 Pa, so the expected
        # digital rms is 1 / 28.3 = 0.0354 (plus small nonlinear
        # contributions).
        expected = 1.0 / (20.0 * np.sqrt(2.0))
        assert recording.rms() == pytest.approx(expected, rel=0.15)

    def test_requires_pascal(self, rng):
        mic = android_phone_microphone()
        with pytest.raises(SignalDomainError):
            mic.record(tone(1000.0, 0.1, RATE), rng)

    def test_requires_rng(self):
        mic = android_phone_microphone()
        with pytest.raises(HardwareModelError):
            mic.record(_pressure_tone(1000.0, 70.0), None)

    def test_deterministic_given_seed(self):
        mic = android_phone_microphone()
        wave = _pressure_tone(1000.0, 70.0)
        a = mic.record(wave, np.random.default_rng(3))
        b = mic.record(wave, np.random.default_rng(3))
        assert a == b


class TestNoiseFloor:
    def test_silence_records_noise_at_floor(self, rng):
        mic = android_phone_microphone()
        silence = _pressure_tone(1000.0, -200.0)
        recording = mic.record(silence, rng)
        # Equivalent input noise 30 dB SPL: the digital floor must land
        # within an order of magnitude of 30 dB SPL re full scale
        # (exact value depends on how much of the injected wideband
        # noise the anti-alias chain keeps).
        assert 3e-6 < recording.rms() < 1e-4


class TestNonlinearDemodulation:
    """The heart of the reproduction."""

    def test_am_ultrasound_demodulated_to_baseband(self, rng):
        mic = android_phone_microphone()
        recording = mic.record(_am_ultrasound(spl=100.0), rng)
        baseband = band_power(recording, 900, 1100)
        noise_reference = band_power(recording, 4000, 6000)
        assert baseband > 30 * noise_reference

    def test_linear_microphone_records_nothing(self, rng):
        mic = ideal_linear_microphone()
        recording = mic.record(_am_ultrasound(spl=100.0), rng)
        baseband = band_power(recording, 900, 1100)
        noise_reference = band_power(recording, 4000, 6000)
        assert baseband < 10 * noise_reference

    def test_demodulated_level_scales_quadratically(self, rng):
        # +6 dB of ultrasound SPL should raise the demodulated tone by
        # ~+12 dB (product of carrier and sideband, both +6).
        mic = android_phone_microphone()
        low = mic.record(_am_ultrasound(spl=94.0), rng)
        high = mic.record(_am_ultrasound(spl=100.0), rng)
        gain_db = 10 * np.log10(
            band_power(high, 900, 1100) / band_power(low, 900, 1100)
        )
        assert gain_db == pytest.approx(12.0, abs=2.5)

    def test_carrier_itself_absent_from_recording(self, rng):
        mic = android_phone_microphone()
        recording = mic.record(_am_ultrasound(spl=100.0), rng)
        # Device rate is 48 kHz; 40 kHz carrier must not alias in.
        psd = welch_psd(recording)
        assert psd.band_power(15000, 23000) < psd.band_power(900, 1100)

    def test_demodulation_gain_helper(self):
        mic = android_phone_microphone()
        gain_quiet = mic.demodulation_gain(carrier_spl=80.0)
        gain_loud = mic.demodulation_gain(carrier_spl=100.0)
        assert gain_loud == pytest.approx(10 * gain_quiet, rel=0.01)


class TestFrontEnd:
    def test_cover_attenuates_ultrasound_not_speech(self, rng):
        covered = Microphone(
            MicrophoneConfig(
                device_rate=48000.0,
                front_end_attenuation_db=10.0,
                nonlinearity=PolynomialNonlinearity((1.0, 0.08)),
            )
        )
        bare = Microphone(
            MicrophoneConfig(
                device_rate=48000.0,
                front_end_attenuation_db=0.0,
                nonlinearity=PolynomialNonlinearity((1.0, 0.08)),
            )
        )
        wave = _am_ultrasound(spl=100.0)
        rec_covered = covered.record(wave, np.random.default_rng(1))
        rec_bare = bare.record(wave, np.random.default_rng(1))
        loss_db = 10 * np.log10(
            band_power(rec_bare, 900, 1100)
            / band_power(rec_covered, 900, 1100)
        )
        # Quadratic demodulation doubles the 10 dB front-end loss.
        assert loss_db == pytest.approx(20.0, abs=3.0)
        # Audible speech is unaffected by the cover.
        speech = _pressure_tone(1000.0, 70.0)
        rec_covered_speech = covered.record(
            speech, np.random.default_rng(2)
        )
        rec_bare_speech = bare.record(speech, np.random.default_rng(2))
        ratio = band_power(rec_covered_speech, 900, 1100) / band_power(
            rec_bare_speech, 900, 1100
        )
        assert ratio == pytest.approx(1.0, abs=0.2)


class TestConfigValidation:
    def test_noise_above_full_scale_rejected(self):
        with pytest.raises(HardwareModelError):
            MicrophoneConfig(full_scale_spl=90.0, noise_floor_spl=95.0)

    def test_implausible_full_scale_rejected(self):
        with pytest.raises(HardwareModelError):
            MicrophoneConfig(full_scale_spl=40.0)

    def test_dc_block_range_enforced(self):
        with pytest.raises(HardwareModelError):
            MicrophoneConfig(dc_block_hz=30.0)
