"""Unit tests for the ADC and amplifier models."""

import numpy as np
import pytest

from repro.dsp.signals import Signal, Unit, multi_tone, tone
from repro.dsp.spectrum import band_power, dominant_frequency
from repro.hardware.adc import AnalogToDigitalConverter
from repro.hardware.amplifier import Amplifier
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.errors import HardwareModelError


class TestAdc:
    def test_output_rate_and_unit(self):
        adc = AnalogToDigitalConverter(sample_rate=48000.0)
        out = adc.convert(tone(1000.0, 0.1, 192000.0, unit=Unit.VOLT))
        assert out.sample_rate == 48000.0
        assert out.unit == Unit.DIGITAL

    def test_tone_survives(self):
        adc = AnalogToDigitalConverter(sample_rate=48000.0)
        out = adc.convert(tone(1000.0, 0.2, 192000.0, unit=Unit.VOLT))
        assert dominant_frequency(out) == pytest.approx(1000.0, abs=10)

    def test_ultrasound_removed(self):
        adc = AnalogToDigitalConverter(sample_rate=48000.0)
        s = multi_tone(
            [(1000.0, 0.4), (40000.0, 0.4)], 0.2, 192000.0,
            unit=Unit.VOLT,
        )
        out = adc.convert(s)
        assert band_power(out, 900, 1100) > 0.01
        # 40 kHz must not alias into the kept band.
        assert band_power(out, 7000, 9000) < 1e-8

    def test_clipping(self):
        adc = AnalogToDigitalConverter(sample_rate=48000.0, full_scale=0.5)
        out = adc.convert(tone(1000.0, 0.1, 96000.0, unit=Unit.VOLT))
        assert out.peak() <= 1.0 + 1e-9
        assert np.mean(np.abs(out.samples) > 0.99) > 0.1

    def test_quantization_step(self):
        adc = AnalogToDigitalConverter(sample_rate=8000.0, bit_depth=8)
        out = adc.convert(
            tone(100.0, 0.1, 8000.0, amplitude=0.5, unit=Unit.VOLT)
        )
        distinct = np.unique(out.samples)
        assert len(distinct) <= 2**8

    def test_16bit_quantization_noise_small(self):
        adc = AnalogToDigitalConverter(sample_rate=8000.0, bit_depth=16)
        s = tone(100.0, 0.2, 8000.0, amplitude=0.5, unit=Unit.VOLT)
        out = adc.convert(s)
        n = out.n_samples
        middle = slice(n // 4, 3 * n // 4)  # skip filter edge transients
        error = out.samples[middle] - s.samples[middle]
        assert np.max(np.abs(error)) < 1e-3

    def test_input_below_device_rate_rejected(self):
        adc = AnalogToDigitalConverter(sample_rate=48000.0)
        with pytest.raises(HardwareModelError):
            adc.convert(tone(100.0, 0.1, 16000.0, unit=Unit.VOLT))

    def test_invalid_parameters_rejected(self):
        with pytest.raises(HardwareModelError):
            AnalogToDigitalConverter(sample_rate=-1.0)
        with pytest.raises(HardwareModelError):
            AnalogToDigitalConverter(sample_rate=48000.0, bit_depth=1)
        with pytest.raises(HardwareModelError):
            AnalogToDigitalConverter(sample_rate=48000.0, full_scale=0.0)


class TestAmplifier:
    def test_gain(self):
        amp = Amplifier(gain=3.0)
        out = amp.amplify(Signal([1.0, -2.0], 100.0, Unit.VOLT))
        assert list(out.samples) == [3.0, -6.0]

    def test_clipping_at_saturation(self):
        amp = Amplifier(gain=10.0, saturation=5.0)
        out = amp.amplify(Signal([1.0], 100.0, Unit.VOLT))
        assert out.samples[0] == 5.0

    def test_headroom(self):
        amp = Amplifier(gain=1.0, saturation=10.0)
        s = Signal([1.0], 100.0, Unit.VOLT)
        assert amp.headroom_db(s) == pytest.approx(20.0)

    def test_nonlinear_amp_distorts(self):
        amp = Amplifier(
            gain=1.0,
            saturation=1.0,
            nonlinearity=PolynomialNonlinearity((1.0, 0.2)),
        )
        s = tone(1000.0, 0.1, 48000.0, amplitude=0.5, unit=Unit.VOLT)
        out = amp.amplify(s)
        assert band_power(out, 1900, 2100) > 1e-6

    def test_nonlinear_amp_needs_finite_saturation(self):
        amp = Amplifier(
            nonlinearity=PolynomialNonlinearity((1.0, 0.2))
        )
        with pytest.raises(HardwareModelError):
            amp.amplify(Signal([0.1], 100.0, Unit.VOLT))

    def test_invalid_gain_rejected(self):
        with pytest.raises(HardwareModelError):
            Amplifier(gain=0.0)
