"""Unit tests for the polynomial nonlinearity model."""

import numpy as np
import pytest

from repro.dsp.signals import multi_tone, tone
from repro.dsp.spectrum import welch_psd
from repro.hardware.nonlinearity import PolynomialNonlinearity
from repro.errors import HardwareModelError

RATE = 192000.0


class TestConstruction:
    def test_accessors(self):
        nl = PolynomialNonlinearity((2.0, 0.1, 0.01))
        assert nl.a1 == 2.0
        assert nl.a2 == 0.1
        assert nl.a3 == 0.01
        assert nl.order == 3

    def test_defaults_for_missing_orders(self):
        nl = PolynomialNonlinearity((1.0,))
        assert nl.a2 == 0.0
        assert nl.a3 == 0.0

    def test_empty_rejected(self):
        with pytest.raises(HardwareModelError):
            PolynomialNonlinearity(())

    def test_zero_linear_gain_rejected(self):
        with pytest.raises(HardwareModelError):
            PolynomialNonlinearity((0.0, 0.1))

    def test_non_finite_rejected(self):
        with pytest.raises(HardwareModelError):
            PolynomialNonlinearity((1.0, np.inf))

    def test_linear_factory(self):
        nl = PolynomialNonlinearity.linear(3.0)
        assert nl.is_linear()
        assert nl.a1 == 3.0


class TestApplication:
    def test_linear_passthrough(self):
        nl = PolynomialNonlinearity.linear(2.0)
        x = np.array([0.1, -0.5])
        assert np.allclose(nl.apply_array(x), 2.0 * x)

    def test_polynomial_values(self):
        nl = PolynomialNonlinearity((1.0, 0.5, 0.25))
        x = np.array([2.0])
        # 1*2 + 0.5*4 + 0.25*8 = 6
        assert nl.apply_array(x)[0] == pytest.approx(6.0)

    def test_signal_wrapper_preserves_metadata(self):
        nl = PolynomialNonlinearity((1.0, 0.1))
        s = tone(1000.0, 0.1, RATE)
        out = nl.apply(s)
        assert out.sample_rate == s.sample_rate
        assert out.unit == s.unit


class TestSpectralEffects:
    def test_harmonics_appear(self):
        nl = PolynomialNonlinearity((1.0, 0.1))
        s = tone(10000.0, 0.2, RATE)
        psd = welch_psd(nl.apply(s), segment_length=16384)
        assert psd.band_power(19500, 20500) > 1e-6  # 2nd harmonic

    def test_intermodulation_difference_tone(self):
        nl = PolynomialNonlinearity((1.0, 0.1))
        s = multi_tone([(25000.0, 1.0), (30000.0, 1.0)], 0.2, RATE)
        psd = welch_psd(nl.apply(s), segment_length=16384)
        assert psd.band_power(4800, 5200) > 1e-5   # f2 - f1
        assert psd.band_power(54500, 55500) > 1e-5  # f1 + f2

    def test_linear_device_produces_no_intermodulation(self):
        nl = PolynomialNonlinearity.linear()
        s = multi_tone([(25000.0, 1.0), (30000.0, 1.0)], 0.2, RATE)
        psd = welch_psd(nl.apply(s), segment_length=16384)
        assert psd.band_power(4800, 5200) < 1e-12

    def test_predicted_product_amplitude(self):
        nl = PolynomialNonlinearity((1.0, 0.05))
        predicted = nl.second_order_product_amplitude(0.5, 0.4)
        assert predicted == pytest.approx(0.05 * 0.5 * 0.4)

    def test_negative_amplitude_rejected(self):
        nl = PolynomialNonlinearity((1.0, 0.05))
        with pytest.raises(HardwareModelError):
            nl.second_order_product_amplitude(-0.1, 0.4)


class TestScaling:
    def test_scaled(self):
        nl = PolynomialNonlinearity((1.0, 0.1)).scaled(2.0)
        assert nl.coefficients == (2.0, 0.2)

    def test_scale_by_zero_rejected(self):
        with pytest.raises(HardwareModelError):
            PolynomialNonlinearity((1.0,)).scaled(0.0)
