"""Setup shim for environments without the `wheel` package.

The canonical metadata lives in pyproject.toml; this file only exists
so that `pip install -e . --no-build-isolation` can fall back to the
legacy `setup.py develop` path on offline machines where PEP 660
editable builds (which require the `wheel` package) are unavailable.
"""

from setuptools import setup

setup()
