"""Append fresh ``BENCH_*.json`` records to the perf trajectory.

CI's ``perf-gates`` job restores ``bench-trajectory.jsonl`` from the
previous run's cache, runs the benchmarks, then calls this script so
every commit adds one summarised line per benchmark — machine
metadata (cpu count, python, git sha) included, so points from
different runners are never compared naively. The file is plain
JSONL: one benchmark point per line, append-only, trivially
plottable.

Usage::

    python benchmarks/trajectory.py BENCH_pipeline.json BENCH_stream.json
    python benchmarks/trajectory.py BENCH_*.json --output history.jsonl
"""

from __future__ import annotations

import argparse
import sys

from repro.sim.bench import append_trajectory


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="append BENCH_*.json points to the perf trajectory"
    )
    parser.add_argument(
        "records",
        nargs="+",
        help="BENCH_*.json files to summarise and append",
    )
    parser.add_argument(
        "--output",
        default="bench-trajectory.jsonl",
        help="trajectory file to append to (default: "
        "bench-trajectory.jsonl)",
    )
    args = parser.parse_args(argv)
    appended = append_trajectory(args.records, args.output)
    print(
        f"appended {appended} point(s) to {args.output}",
        file=sys.stderr,
    )
    if appended == 0:
        print(
            "FAIL: no benchmark records found to append",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
