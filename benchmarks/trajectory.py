"""Append fresh ``BENCH_*.json`` records to the perf trajectory.

CI's ``perf-gates`` job restores ``bench-trajectory.jsonl`` from the
previous run's cache (an empty or absent file on a cold cache is
fine — the append creates it), runs the benchmarks, then calls this
script so every commit adds one summarised line per benchmark —
machine metadata (cpu count, python, git sha) included, so points
from different runners are never compared naively. The file is plain
JSONL: one benchmark point per line, append-only, trivially
plottable.

A named record that does not exist on disk is an error, not a silent
skip — a benchmark that failed to write its JSON must fail the job
here rather than quietly thin the trajectory. After appending, the
script reads the trajectory back and verifies the new tail really
carries this run's records (and, with ``--expect-sha``, this run's
commit), so a cache misconfiguration that drops the append can never
pass silently.

Usage::

    python benchmarks/trajectory.py BENCH_pipeline.json BENCH_stream.json
    python benchmarks/trajectory.py BENCH_*.json --output history.jsonl
    python benchmarks/trajectory.py BENCH_*.json --expect-sha "$GITHUB_SHA"
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.sim.bench import append_trajectory


def verify_tail(
    trajectory_path: str | Path,
    expected_sources: list[str],
    expect_sha: str | None,
) -> list[str]:
    """Check the trajectory's tail carries this run's appends.

    Returns a list of human-readable problems (empty when the tail is
    healthy): the file must exist, be non-empty, parse as JSONL, end
    with one line per appended record (matched by source name), and —
    when ``expect_sha`` is given — attribute those lines to that
    commit.
    """
    path = Path(trajectory_path)
    if not path.exists():
        return [f"{path} was not created by the append"]
    lines = [
        line
        for line in path.read_text().splitlines()
        if line.strip()
    ]
    if len(lines) < len(expected_sources):
        return [
            f"{path} holds {len(lines)} point(s), fewer than the "
            f"{len(expected_sources)} just appended"
        ]
    problems = []
    tail = lines[-len(expected_sources):]
    tail_points = []
    for line in tail:
        try:
            tail_points.append(json.loads(line))
        except json.JSONDecodeError as error:
            problems.append(f"unparseable trajectory line: {error}")
            return problems
    tail_sources = [point.get("source") for point in tail_points]
    if sorted(tail_sources) != sorted(expected_sources):
        problems.append(
            f"trajectory tail carries {tail_sources}, expected "
            f"{expected_sources}"
        )
    if expect_sha:
        for point in tail_points:
            sha = (point.get("machine") or {}).get("git_sha")
            if sha != expect_sha:
                problems.append(
                    f"trajectory point from {point.get('source')} "
                    f"carries git sha {sha!r}, expected {expect_sha!r}"
                )
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="append BENCH_*.json points to the perf trajectory"
    )
    parser.add_argument(
        "records",
        nargs="+",
        help="BENCH_*.json files to summarise and append (each must "
        "exist)",
    )
    parser.add_argument(
        "--output",
        default="bench-trajectory.jsonl",
        help="trajectory file to append to (default: "
        "bench-trajectory.jsonl; created if absent)",
    )
    parser.add_argument(
        "--expect-sha",
        default=None,
        help="verify the appended points carry this git sha (CI "
        "passes $GITHUB_SHA)",
    )
    args = parser.parse_args(argv)
    missing = [
        record for record in args.records if not Path(record).exists()
    ]
    if missing:
        print(
            "FAIL: benchmark record(s) missing, refusing a silent "
            f"skip: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 1
    appended = append_trajectory(args.records, args.output)
    print(
        f"appended {appended} point(s) to {args.output}",
        file=sys.stderr,
    )
    if appended != len(args.records):
        print(
            f"FAIL: expected {len(args.records)} appended point(s), "
            f"got {appended}",
            file=sys.stderr,
        )
        return 1
    problems = verify_tail(
        args.output,
        [Path(record).name for record in args.records],
        args.expect_sha,
    )
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    if problems:
        return 1
    total = sum(
        1
        for line in Path(args.output).read_text().splitlines()
        if line.strip()
    )
    print(
        f"verified trajectory tail; {total} point(s) on record",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
