"""Benchmark the declarative trial pipeline: scalar vs batched mode.

Three workloads, each timed in both executor modes and verified to
agree bitwise before any timing is reported:

* **T2-class trial groups** — the 32-speaker split-array success-rate
  cell in the free field, executed through ``ExperimentEngine`` with
  the pipeline's batched executor on and off. Recognition-inclusive,
  so the batched DTW kernel and per-chunk filter-design amortisation
  both count. Gated: batch must be >= 1.5x scalar in full mode.
* **walking-attacker trial groups** — the same cell under the mobile
  attacker, adding the per-trial motion-gain stage. Gated at the same
  1.5x floor.
* **defense dataset build** — ``build_dataset`` for an F8-class
  config. This workload is *parity-bound*: ~two thirds of its wall
  clock is zero-phase filtering and per-trial noise draws that the
  bitwise batch-equals-scalar contract forces both modes to execute
  identically, so its honest ceiling is well below 1.5x (see the
  profile breakdown in EXPERIMENTS.md). It is reported as a
  diagnostic row with a regression tripwire, not a vectorization
  gate.

The results — plus a per-stage wall-time breakdown from the
pipeline's :class:`~repro.sim.pipeline.StageProfile` hook — are
written to ``BENCH_pipeline.json`` so CI records the perf trajectory
run over run::

    python benchmarks/bench_pipeline.py --quick    # CI smoke
    python benchmarks/bench_pipeline.py            # gated paper numbers
    python benchmarks/bench_pipeline.py --output /tmp/bench.json

Exits non-zero if the modes disagree or any workload falls below its
gate. Quick mode shrinks the workloads until fixed costs dominate, so
its trial-group gates are regression tripwires (1.0x) rather than the
full-mode 1.5x floor — CI runs the *full* bench for the vectorization
gate.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.experiments._emissions import array_split
from repro.sim.bench import write_bench_record
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.pipeline import StageProfile, build_pipeline
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario
from repro.sim.scenario import VictimDevice


def _trial_group(scenario_name: str, seed: int, n_trials: int) -> TrialGroup:
    scenario = get_scenario(scenario_name).build("ok_google", 3.0)
    return TrialGroup(
        scenario,
        VictimDevice.phone(seed=seed + 1),
        EmissionSpec(array_split, ("ok_google", seed, 32)),
        n_trials,
    )


def bench_trial_group(
    label: str,
    scenario_name: str,
    quick: bool,
    seed: int,
    min_speedup: float,
) -> dict:
    """Scalar-vs-batch timing for one recognition trial-group cell."""
    n_trials = 10 if quick else 50
    group = _trial_group(scenario_name, seed, n_trials)
    group.resolve_sources()  # warm the emission cache for both modes
    timings = {}
    outcomes = {}
    for mode in (False, True):
        engine = ExperimentEngine(jobs=1, batch=mode)
        started = time.perf_counter()
        outcomes[mode] = engine.run_trial_groups(
            [group], np.random.default_rng(seed), keep_recordings=False
        )[0]
        timings[mode] = time.perf_counter() - started
    agree = len(outcomes[False]) == len(outcomes[True]) and all(
        x.success == y.success and x.distance == y.distance
        for x, y in zip(outcomes[False], outcomes[True])
    )
    return {
        "workload": f"{label} ({n_trials} trials)",
        "scalar_s": timings[False],
        "batch_s": timings[True],
        "speedup": timings[False] / timings[True],
        "identical": agree,
        "min_speedup": min_speedup,
        "parity_bound": False,
    }


def bench_dataset_build(
    quick: bool, seed: int, min_speedup: float
) -> dict:
    """Scalar-vs-batch timing for an F8-class defense dataset build.

    Diagnostic row: the build is dominated by bitwise-parity DSP (the
    zero-phase device filters and per-trial noise draws run
    identically in both modes), so near-parity is the expectation and
    the gate is a tripwire against pathological regressions only.
    """
    config = DatasetConfig(
        commands=("ok_google", "alexa") if quick else
        ("ok_google", "alexa", "add_milk"),
        distances_m=(1.0, 2.0),
        n_trials=2 if quick else 10,
        attacker_kind="single_full",
        seed=seed,
    )
    timings = {}
    features = {}
    for mode in (False, True):
        started = time.perf_counter()
        features[mode] = build_dataset(config, batch=mode).features
        timings[mode] = time.perf_counter() - started
    return {
        "workload": (
            f"defense dataset build ({config.n_trials} trials x "
            f"{len(config.commands)} commands x "
            f"{len(config.distances_m)} distances)"
        ),
        "scalar_s": timings[False],
        "batch_s": timings[True],
        "speedup": timings[False] / timings[True],
        "identical": bool(
            np.array_equal(features[False], features[True])
        ),
        "min_speedup": min_speedup,
        "parity_bound": True,
    }


def profile_stages(quick: bool, seed: int) -> StageProfile:
    """Per-stage wall-time breakdown of the T2 cell, both modes.

    A separate instrumented pass (the timed runs above stay
    uninstrumented) through the pipeline's profiling hook, so the
    JSON artifact records *where* each mode spends its time — the
    first thing to look at when a gate trips.
    """
    n_trials = 10 if quick else 50
    group = _trial_group("free_field", seed, n_trials)
    pipeline = build_pipeline(group.scenario, group.device)
    ctx = pipeline.context(group.resolve_sources())
    profile = StageProfile()
    for mode in (False, True):
        rngs = np.random.default_rng(seed).spawn(n_trials)
        pipeline.run_trials(ctx, rngs, batch=mode, profile=profile)
    return profile


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="trial pipeline: scalar vs batched wall clock"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads (CI smoke); identical-output gates plus "
        "regression tripwires instead of the full-mode 1.5x floor",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        default="BENCH_pipeline.json",
        help="where to write the JSON record (default: "
        "BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    # Quick mode's 10-trial cells spend most of their wall clock on
    # fixed per-group costs (emission warm-up, the shared transmit
    # precompute), so only the full-size workloads carry the 1.5x
    # vectorization floor.
    trial_gate = 1.0 if args.quick else 1.5
    dataset_gate = 0.7 if args.quick else 0.85
    results = [
        bench_trial_group(
            "T2 split array", "free_field", args.quick, args.seed,
            trial_gate,
        ),
        bench_trial_group(
            "walking attacker", "walking_attacker", args.quick,
            args.seed, trial_gate,
        ),
        bench_dataset_build(args.quick, args.seed, dataset_gate),
    ]
    profile = profile_stages(args.quick, args.seed)
    write_bench_record(
        args.output,
        {
            "benchmark": "trial-pipeline scalar vs batched",
            "quick": args.quick,
            "seed": args.seed,
            "results": results,
            "stages": profile.as_rows(),
        },
    )
    table = ResultTable(
        title="trial pipeline: scalar vs batched (single worker)",
        columns=["workload", "scalar s", "batch s", "speedup"],
    )
    for result in results:
        table.add_row(
            result["workload"],
            result["scalar_s"],
            result["batch_s"],
            result["speedup"],
        )
    print(table.render())
    print(profile.render(), file=sys.stderr)
    print(f"wrote {args.output}", file=sys.stderr)
    if not all(result["identical"] for result in results):
        print(
            "FAIL: batched and scalar outputs disagree", file=sys.stderr
        )
        return 1
    failed = [
        result
        for result in results
        if result["speedup"] < result["min_speedup"]
    ]
    for result in failed:
        print(
            f"FAIL: {result['workload']} at {result['speedup']:.2f}x, "
            f"gate {result['min_speedup']:.2f}x",
            file=sys.stderr,
        )
    if failed:
        return 1
    print(
        "ok: speedups "
        + ", ".join(f"{r['speedup']:.2f}x" for r in results),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
