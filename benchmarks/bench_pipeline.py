"""Benchmark the declarative trial pipeline: scalar vs batched mode.

The two workloads that matter to the suite's wall clock:

* **T2-class trial groups** — the 32-speaker split-array success-rate
  cell, executed through ``ExperimentEngine`` with the pipeline's
  batched executor on and off;
* **defense dataset build** — ``build_dataset`` for an F8-class
  config, whose recording synthesis now runs on the same pipeline
  (one transmission per cell, stacked per-trial stages).

Both modes are verified to agree before timings are reported, and the
results are written to ``BENCH_pipeline.json`` so CI records the perf
trajectory run over run::

    python benchmarks/bench_pipeline.py --quick    # CI smoke
    python benchmarks/bench_pipeline.py            # paper numbers
    python benchmarks/bench_pipeline.py --output /tmp/bench.json

Exits non-zero if the modes disagree, or if the batched path falls
below 0.7x scalar on the trial-heavy workload — a regression
tripwire, not a vectorization claim: the pipeline's trial-invariant
precompute serves both modes, so near-parity is the expectation (see
EXPERIMENTS.md for the history).
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.defense.dataset import DatasetConfig, build_dataset
from repro.experiments._emissions import array_split
from repro.sim.bench import machine_metadata
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.spec import get_scenario
from repro.sim.scenario import VictimDevice


def bench_t2_group(quick: bool, seed: int) -> dict:
    """Scalar-vs-batch timing for the T2 split-array cell."""
    n_trials = 10 if quick else 50
    scenario = get_scenario("free_field").build("ok_google", 3.0)
    group = TrialGroup(
        scenario,
        VictimDevice.phone(seed=seed + 1),
        EmissionSpec(array_split, ("ok_google", seed, 32)),
        n_trials,
    )
    group.resolve_sources()  # warm the emission cache for both modes
    timings = {}
    outcomes = {}
    for mode in (False, True):
        engine = ExperimentEngine(jobs=1, batch=mode)
        started = time.perf_counter()
        outcomes[mode] = engine.run_trial_groups(
            [group], np.random.default_rng(seed), keep_recordings=False
        )[0]
        timings[mode] = time.perf_counter() - started
    agree = len(outcomes[False]) == len(outcomes[True]) and all(
        x.success == y.success and x.distance == y.distance
        for x, y in zip(outcomes[False], outcomes[True])
    )
    return {
        "workload": f"T2 split array ({n_trials} trials)",
        "scalar_s": timings[False],
        "batch_s": timings[True],
        "speedup": timings[False] / timings[True],
        "identical": agree,
    }


def bench_dataset_build(quick: bool, seed: int) -> dict:
    """Scalar-vs-batch timing for an F8-class defense dataset build."""
    config = DatasetConfig(
        commands=("ok_google", "alexa") if quick else
        ("ok_google", "alexa", "add_milk"),
        distances_m=(1.0, 2.0),
        n_trials=2 if quick else 10,
        attacker_kind="single_full",
        seed=seed,
    )
    timings = {}
    features = {}
    for mode in (False, True):
        started = time.perf_counter()
        features[mode] = build_dataset(config, batch=mode).features
        timings[mode] = time.perf_counter() - started
    return {
        "workload": (
            f"defense dataset build ({config.n_trials} trials x "
            f"{len(config.commands)} commands x "
            f"{len(config.distances_m)} distances)"
        ),
        "scalar_s": timings[False],
        "batch_s": timings[True],
        "speedup": timings[False] / timings[True],
        "identical": bool(
            np.array_equal(features[False], features[True])
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="trial pipeline: scalar vs batched wall clock"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads (CI smoke); same identical-output and "
        "0.7x-tripwire gates as full mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--output",
        default="BENCH_pipeline.json",
        help="where to write the JSON record (default: "
        "BENCH_pipeline.json)",
    )
    args = parser.parse_args(argv)
    results = [
        bench_t2_group(args.quick, args.seed),
        bench_dataset_build(args.quick, args.seed),
    ]
    record = {
        "benchmark": "trial-pipeline scalar vs batched",
        "quick": args.quick,
        "seed": args.seed,
        "machine": machine_metadata(),
        "results": results,
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    table = ResultTable(
        title="trial pipeline: scalar vs batched (single worker)",
        columns=["workload", "scalar s", "batch s", "speedup"],
    )
    for result in results:
        table.add_row(
            result["workload"],
            result["scalar_s"],
            result["batch_s"],
            result["speedup"],
        )
    print(table.render())
    print(f"wrote {args.output}", file=sys.stderr)
    if not all(result["identical"] for result in results):
        print(
            "FAIL: batched and scalar outputs disagree", file=sys.stderr
        )
        return 1
    # The pipeline gives transmission amortisation to BOTH modes (the
    # scalar walk of the 50-trial split-array cell fell from ~24 s to
    # ~3.4 s when the shared precompute landed), so batch-vs-scalar is
    # expected to be near parity, not the old 8x. The gate is a
    # regression tripwire — the batched path must not become
    # *pathologically* slower — sized to survive noisy CI runners.
    gated = results[0]["speedup"]
    if gated < 0.7:
        print(
            f"FAIL: batch much slower than scalar on the trial-heavy "
            f"workload ({gated:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(
        "ok: speedups "
        + ", ".join(f"{r['speedup']:.2f}x" for r in results),
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
