"""Benchmark F5 — per-chunk audibility across array sizes.

Regenerates the paper artefact via ``repro.experiments.f5_split_audibility``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f5_split_audibility.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f5_split_audibility


def test_f5_split_audibility(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f5_split_audibility.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
