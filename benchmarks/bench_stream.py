"""Benchmark the streaming guard: parity gate + fleet throughput.

Two measurements, recorded to ``BENCH_stream.json`` for CI's
run-over-run trajectory:

* **Parity** — the chunked streaming guard must agree with the
  offline guard *bitwise* on an attack and a genuine probe at several
  chunk sizes (the S1/test-suite guarantee, re-checked here so the
  throughput number can never be quoted from a diverged
  implementation).
* **Fleet throughput** — a mostly-idle device fleet (ambient with one
  command per stream, the duty cycle real assistants see) streamed
  through per-device guards on a thread pool. The headline figure is
  ``sustained_streams``: stream-seconds of audio processed per wall
  second, i.e. how many live 1x device streams this machine holds.
  The gate requires >= 100.

Usage::

    python benchmarks/bench_stream.py --quick    # CI smoke (same gates)
    python benchmarks/bench_stream.py            # paper numbers
    python benchmarks/bench_stream.py --output /tmp/bench.json

Exits non-zero if parity fails or the sustained-stream gate misses.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.experiments.s1_streaming import (
    chunked_parity_probes,
    train_detector,
)
from repro.sim.results import ResultTable
from repro.stream.fleet import FleetConfig, FleetSimulator

#: The acceptance gate: live 1x device streams the machine must hold.
SUSTAINED_STREAMS_GATE = 100


def bench_parity(seed: int, scenario: str) -> dict:
    """Chunked-vs-offline bitwise agreement on both probe classes.

    Walks the same probe loop as the S1 experiment
    (:func:`repro.experiments.s1_streaming.chunked_parity_probes`),
    so this gate can never drift from the table it re-checks.
    """
    detector = train_detector(scenario, seed, n_trials=2)
    cases = [
        {"probe": kind, "chunk_ms": chunk_ms, "bitwise": bitwise}
        for kind, chunk_ms, _, bitwise in chunked_parity_probes(
            scenario, seed, (10, 50, 250), detector
        )
    ]
    return {
        "workload": f"chunked vs offline parity ({scenario})",
        "cases": cases,
        "identical": all(case["bitwise"] for case in cases),
    }


def bench_fleet(quick: bool, seed: int, scenario: str) -> dict:
    """Sustained concurrent streams on a mostly-idle fleet."""
    detector = train_detector(scenario, seed, n_trials=2)
    config = FleetConfig(
        scenario=scenario,
        n_streams=120,
        utterances_per_stream=1,
        attack_fraction=0.5,
        # Mostly-idle duty cycle: one command inside seconds of
        # ambient, the load profile the paper's always-on deployment
        # actually faces. Quick mode shortens the idle stretches
        # (less audio, same per-utterance work — a *harder* gate).
        lead_in_s=0.5,
        gap_s=6.0 if quick else 10.0,
        chunk_s=0.05,
        seed=seed + 3,
        workers=max(1, (os.cpu_count() or 2)),
    )
    report = FleetSimulator(detector, config).run()
    latencies = report.latencies_s()
    sustained = int(report.realtime_factor)
    return {
        "workload": (
            f"fleet: {config.n_streams} streams x "
            f"{config.utterances_per_stream} utterance, "
            f"{config.gap_s:.0f} s idle gap ({scenario})"
        ),
        "n_streams": config.n_streams,
        "workers": config.workers,
        "audio_seconds": report.audio_seconds,
        "wall_seconds": report.wall_seconds,
        "prepare_seconds": report.prepare_seconds,
        "realtime_factor": report.realtime_factor,
        "sustained_streams": sustained,
        "utterances": report.n_utterances,
        "vetoed": report.n_vetoed,
        "executed": report.n_executed,
        "rejected": report.n_rejected,
        "mean_latency_ms": (
            1000.0 * float(np.mean(latencies)) if latencies else 0.0
        ),
        "p95_latency_ms": (
            1000.0 * float(np.percentile(latencies, 95))
            if latencies
            else 0.0
        ),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming guard: parity gate + fleet throughput"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter idle stretches (CI smoke); same parity and "
        f">= {SUSTAINED_STREAMS_GATE}-stream gates as full mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="free_field")
    parser.add_argument(
        "--output",
        default="BENCH_stream.json",
        help="where to write the JSON record (default: "
        "BENCH_stream.json)",
    )
    args = parser.parse_args(argv)
    parity = bench_parity(args.seed, args.scenario)
    fleet = bench_fleet(args.quick, args.seed, args.scenario)
    record = {
        "benchmark": "streaming guard parity + fleet throughput",
        "quick": args.quick,
        "seed": args.seed,
        "scenario": args.scenario,
        "gate_sustained_streams": SUSTAINED_STREAMS_GATE,
        "results": [parity, fleet],
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    table = ResultTable(
        title="streaming guard: fleet throughput",
        columns=[
            "workload",
            "streams",
            "audio s",
            "wall s",
            "sustained",
            "mean lat ms",
        ],
    )
    table.add_row(
        fleet["workload"],
        fleet["n_streams"],
        fleet["audio_seconds"],
        fleet["wall_seconds"],
        fleet["sustained_streams"],
        fleet["mean_latency_ms"],
    )
    print(table.render())
    print(f"wrote {args.output}", file=sys.stderr)
    if not parity["identical"]:
        print(
            "FAIL: chunked streaming diverged from the offline guard",
            file=sys.stderr,
        )
        return 1
    if fleet["sustained_streams"] < SUSTAINED_STREAMS_GATE:
        print(
            f"FAIL: sustains {fleet['sustained_streams']} concurrent "
            f"streams, gate is {SUSTAINED_STREAMS_GATE}",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: parity bitwise, {fleet['sustained_streams']} concurrent "
        f"streams sustained "
        f"(mean latency {fleet['mean_latency_ms']:.0f} ms)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
