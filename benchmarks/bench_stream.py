"""Benchmark the streaming guard: parity gate + fleet throughput.

Two measurements, recorded to ``BENCH_stream.json`` for CI's
run-over-run trajectory:

* **Parity** — the chunked streaming guard must agree with the
  offline guard *bitwise* on an attack and a genuine probe at several
  chunk sizes (the S1/test-suite guarantee, re-checked here so the
  throughput number can never be quoted from a diverged
  implementation).
* **Fleet throughput** — a mostly-idle device fleet (ambient with one
  command per stream, the duty cycle real assistants see) run twice
  on identical audio: once through the scalar per-stream loop (the
  "before" reference), once through the structure-of-arrays kernel
  (:mod:`repro.stream.kernel`). Each path makes ``REPEATS`` passes
  and the fastest wall clock wins (min-of-N: interference only adds
  time), with the digest checked across every pass. The headline
  figure is ``sustained_streams``: stream-seconds of audio processed
  per wall second, i.e. how many live 1x device streams this machine
  holds.
  Gates: the two digests are bitwise identical, and the kernel
  sustains >= 250 streams. The kernel run also feeds a
  :class:`~repro.sim.pipeline.StageProfile`, so the record's
  top-level ``stages`` rows attribute wall time to ingest /
  segment / welch / recognize / detect (printed by CI's perf-gates
  step alongside the trial pipeline's breakdown).
* **Sharded fleet** — the same duty cycle scaled to every core
  through :class:`~repro.stream.shard.ShardedFleetSimulator`: one
  process shard per core, 120 streams per shard. Gates: the sharded
  digest is bitwise identical to the unsharded simulator, and the
  fleet sustains >= 250 streams *per core* (near-linear scaling);
  ``streams_per_core_per_second`` is the recorded trajectory figure.
* **Mega fleet** (``--mega``, full runs only) — the ROADMAP's
  five-digit demonstration: 10,000 concurrent streams on the quick
  duty cycle, sharded 120 streams per shard, vectorized — then the
  whole fleet again through the scalar per-stream loop, whose digest
  must match bitwise. Slow (it streams ~80k stream-seconds twice);
  not part of the CI gate set.

Every record embeds :func:`repro.sim.bench.machine_metadata` (cpu
count, python, git sha), so trajectory points are comparable across
runners.

Usage::

    python benchmarks/bench_stream.py --quick    # CI smoke (same gates)
    python benchmarks/bench_stream.py            # paper numbers
    python benchmarks/bench_stream.py --mega     # + the 10k-stream run
    python benchmarks/bench_stream.py --shards 4
    python benchmarks/bench_stream.py --output /tmp/bench.json

Exits non-zero if parity fails, a digest diverges, or a
sustained-stream gate misses.
"""

from __future__ import annotations

import argparse
import gc
import os
import sys

from repro.experiments.s1_streaming import (
    chunked_parity_probes,
    train_detector,
)
from repro.sim.bench import write_bench_record
from repro.sim.pipeline import StageProfile
from repro.sim.results import ResultTable
from repro.stream.fleet import FleetConfig, FleetSimulator
from repro.stream.shard import ShardedFleetSimulator

#: The acceptance gate: live 1x device streams the machine must hold.
#: Raised from 100 to 250 when the structure-of-arrays kernel landed
#: (the scalar loop sustains ~120-150 on one core; the kernel ~400+).
SUSTAINED_STREAMS_GATE = 250

#: The sharded gate: live 1x streams each core must hold — sustaining
#: this at every core count is the near-linear-scaling claim.
SUSTAINED_PER_CORE_GATE = 250

#: Streams per shard in the sharded workload (the PR 5 single-core
#: fleet size, so per-shard load stays constant as shards scale).
STREAMS_PER_SHARD = 120

#: The mega demonstration (``--mega``): a five-digit concurrent fleet
#: through the sharded structure-of-arrays kernel.
MEGA_STREAMS = 10_000

#: Wall-clock passes per throughput measurement; the recorded figure
#: is the *fastest* pass (standard min-of-N timing — scheduler and
#: noisy-neighbor interference only ever add time). Digests must be
#: identical across every pass, so repetition can never mask a
#: correctness drift.
REPEATS = 3


def bench_parity(seed: int, scenario: str) -> dict:
    """Chunked-vs-offline bitwise agreement on both probe classes.

    Walks the same probe loop as the S1 experiment
    (:func:`repro.experiments.s1_streaming.chunked_parity_probes`),
    so this gate can never drift from the table it re-checks.
    """
    detector = train_detector(scenario, seed, n_trials=2)
    cases = [
        {"probe": kind, "chunk_ms": chunk_ms, "bitwise": bitwise}
        for kind, chunk_ms, _, bitwise in chunked_parity_probes(
            scenario, seed, (10, 50, 250), detector
        )
    ]
    return {
        "workload": f"chunked vs offline parity ({scenario})",
        "cases": cases,
        "identical": all(case["bitwise"] for case in cases),
    }


def _fleet_config(
    quick: bool, seed: int, scenario: str, **overrides
) -> FleetConfig:
    """The benchmark's mostly-idle duty cycle: one command inside
    seconds of ambient, the load profile the paper's always-on
    deployment actually faces. Quick mode shortens the idle stretches
    (less audio, same per-utterance work — a *harder* gate)."""
    defaults = dict(
        scenario=scenario,
        n_streams=STREAMS_PER_SHARD,
        utterances_per_stream=1,
        attack_fraction=0.5,
        lead_in_s=0.5,
        gap_s=6.0 if quick else 10.0,
        chunk_s=0.05,
        seed=seed + 3,
        workers=max(1, (os.cpu_count() or 2)),
    )
    defaults.update(overrides)
    return FleetConfig(**defaults)


def bench_fleet(
    quick: bool, seed: int, scenario: str
) -> tuple[dict, StageProfile]:
    """Sustained concurrent streams on a mostly-idle fleet.

    Runs the workload through both paths — scalar per-stream loop and
    the structure-of-arrays kernel — so the record carries the honest
    before/after on identical audio, and gates the digests against
    each other: the headline number can never be quoted from a kernel
    that diverged from the per-stream reference. Each path makes
    ``REPEATS`` passes and the fastest wall clock is recorded
    (min-of-N); every pass must produce the same digest.
    """
    detector = train_detector(scenario, seed, n_trials=2)
    scalar_config = _fleet_config(quick, seed, scenario, vectorized=False)
    scalar = None
    for _ in range(REPEATS):
        gc.collect()
        run = FleetSimulator(detector, scalar_config).run()
        if scalar is not None and run.digest() != scalar.digest():
            raise AssertionError("scalar fleet digest drifted between passes")
        if scalar is None or run.wall_seconds < scalar.wall_seconds:
            scalar = run
    config = _fleet_config(quick, seed, scenario, vectorized=True)
    report = None
    profile = StageProfile()
    for _ in range(REPEATS):
        gc.collect()
        pass_profile = StageProfile()
        run = FleetSimulator(detector, config).run(profile=pass_profile)
        if report is not None and run.digest() != report.digest():
            raise AssertionError("kernel fleet digest drifted between passes")
        if report is None or run.wall_seconds < report.wall_seconds:
            report, profile = run, pass_profile
    stats = report.latency_stats()
    sustained = int(report.realtime_factor)
    return {
        "workload": (
            f"fleet: {config.n_streams} streams x "
            f"{config.utterances_per_stream} utterance, "
            f"{config.gap_s:.0f} s idle gap ({scenario})"
        ),
        "n_streams": config.n_streams,
        "workers": config.workers,
        "batch_streams": config.batch_streams,
        "repeats": REPEATS,
        "audio_seconds": report.audio_seconds,
        "wall_seconds": report.wall_seconds,
        "prepare_seconds": report.prepare_seconds,
        "realtime_factor": report.realtime_factor,
        "sustained_streams": sustained,
        "scalar_wall_seconds": scalar.wall_seconds,
        "scalar_sustained_streams": int(scalar.realtime_factor),
        "kernel_speedup": (
            scalar.wall_seconds / report.wall_seconds
            if report.wall_seconds > 0
            else 0.0
        ),
        "digest_identical": report.digest() == scalar.digest(),
        "utterances": report.n_utterances,
        "vetoed": report.n_vetoed,
        "executed": report.n_executed,
        "rejected": report.n_rejected,
        "mean_latency_ms": (
            1000.0 * stats.mean if stats.count else 0.0
        ),
        "p50_latency_ms": (
            1000.0 * stats.quantile(0.5) if stats.count else 0.0
        ),
        "p95_latency_ms": (
            1000.0 * stats.quantile(0.95) if stats.count else 0.0
        ),
        "p99_latency_ms": (
            1000.0 * stats.quantile(0.99) if stats.count else 0.0
        ),
    }, profile


def bench_sharded_fleet(
    quick: bool,
    seed: int,
    scenario: str,
    shards: int,
    single_sustained: int,
) -> dict:
    """Per-core scaling of the process-sharded fleet.

    Two claims, two measurements:

    * **Digest parity** — a small fleet run through both the
      unsharded :class:`FleetSimulator` and the sharded driver at the
      benched shard count must produce bitwise-identical digests
      (cheap: 8 streams), so the throughput number below can never be
      quoted from a diverged implementation.
    * **Throughput** — ``STREAMS_PER_SHARD`` streams *per shard* (the
      PR 5 single-core fleet per core), gated at
      ``SUSTAINED_PER_CORE_GATE`` sustained streams per core.
      ``scaling_efficiency`` compares per-core sustained streams
      against the single-process fleet's figure (1.0 = perfectly
      linear).
    """
    detector = train_detector(scenario, seed, n_trials=2)
    cores = min(shards, os.cpu_count() or 1)

    parity_config = FleetConfig(
        scenario=scenario,
        n_streams=8,
        attack_fraction=0.5,
        seed=seed + 4,
        workers=2,
        shards=shards,
    )
    reference = FleetSimulator(detector, parity_config).run()
    sharded = ShardedFleetSimulator(detector, parity_config).run()
    digest_identical = reference.digest() == sharded.digest()

    config = FleetConfig(
        scenario=scenario,
        n_streams=STREAMS_PER_SHARD * shards,
        utterances_per_stream=1,
        attack_fraction=0.5,
        lead_in_s=0.5,
        gap_s=6.0 if quick else 10.0,
        chunk_s=0.05,
        seed=seed + 3,
        workers=max(1, (os.cpu_count() or 2) // shards),
        shards=shards,
    )
    report = None
    for _ in range(REPEATS):
        gc.collect()
        run = ShardedFleetSimulator(detector, config).run()
        if report is not None and run.digest() != report.digest():
            raise AssertionError("sharded fleet digest drifted between passes")
        if report is None or run.wall_seconds < report.wall_seconds:
            report = run
    sustained = int(report.realtime_factor)
    per_core = report.realtime_factor / cores
    return {
        "workload": (
            f"sharded fleet: {config.n_streams} streams over "
            f"{shards} shards, {config.gap_s:.0f} s idle gap "
            f"({scenario})"
        ),
        "n_streams": config.n_streams,
        "shards": shards,
        "cores": cores,
        "workers_per_shard": config.workers,
        "repeats": REPEATS,
        "audio_seconds": report.audio_seconds,
        "wall_seconds": report.wall_seconds,
        "shard_wall_seconds": list(report.shard_wall_seconds),
        "prepare_seconds": report.prepare_seconds,
        "sustained_streams": sustained,
        "streams_per_core_per_second": per_core,
        "scaling_efficiency": (
            per_core / single_sustained if single_sustained else 0.0
        ),
        "digest_identical": digest_identical,
        "digest": report.digest_hex(),
    }


def bench_mega_fleet(seed: int, scenario: str) -> dict:
    """The five-digit demonstration: ``MEGA_STREAMS`` devices at once.

    The full fleet runs sharded through the structure-of-arrays kernel
    (120 streams per shard, the benched per-core load), then the whole
    workload repeats through the scalar per-stream loop. The scalar
    pass exists for one reason: its digest is the reference the
    kernel's must equal bitwise at this scale — the acceptance
    criterion that vectorization grouping never leaks into results,
    demonstrated on the fleet size the ROADMAP targets rather than
    the unit-test sizes.
    """
    detector = train_detector(scenario, seed, n_trials=2)
    shards = max(
        2, os.cpu_count() or 1, MEGA_STREAMS // STREAMS_PER_SHARD
    )
    cores = min(shards, os.cpu_count() or 1)

    def config(vectorized: bool) -> FleetConfig:
        return FleetConfig(
            scenario=scenario,
            n_streams=MEGA_STREAMS,
            utterances_per_stream=1,
            attack_fraction=0.5,
            # The quick duty cycle: the per-utterance work is
            # identical to full mode; only the idle stretches shrink,
            # which keeps ~80k stream-seconds (x2 passes) tractable.
            lead_in_s=0.5,
            gap_s=6.0,
            chunk_s=0.05,
            seed=seed + 5,
            workers=max(1, (os.cpu_count() or 2) // cores),
            shards=shards,
            vectorized=vectorized,
        )

    report = ShardedFleetSimulator(detector, config(True)).run()
    scalar = ShardedFleetSimulator(detector, config(False)).run()
    sustained = int(report.realtime_factor)
    return {
        "workload": (
            f"mega fleet: {MEGA_STREAMS} streams over {shards} "
            f"shards, 6 s idle gap ({scenario})"
        ),
        "n_streams": MEGA_STREAMS,
        "shards": shards,
        "cores": cores,
        "audio_seconds": report.audio_seconds,
        "wall_seconds": report.wall_seconds,
        "prepare_seconds": report.prepare_seconds,
        "sustained_streams": sustained,
        # Shards run serially when the machine has fewer cores than
        # shards, so the honest per-core figure assumes the deployment
        # model of one core per shard — divide by shards, not by the
        # local core count.
        "streams_per_core_per_second": report.realtime_factor / shards,
        "scalar_wall_seconds": scalar.wall_seconds,
        "scalar_sustained_streams": int(scalar.realtime_factor),
        "kernel_speedup": (
            scalar.wall_seconds / report.wall_seconds
            if report.wall_seconds > 0
            else 0.0
        ),
        "digest_identical": report.digest() == scalar.digest(),
        "digest": report.digest_hex(),
        "utterances": report.n_utterances,
        "vetoed": report.n_vetoed,
        "executed": report.n_executed,
        "rejected": report.n_rejected,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming guard: parity gate + fleet throughput"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter idle stretches (CI smoke); same parity and "
        f">= {SUSTAINED_STREAMS_GATE}-stream gates as full mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="free_field")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="process-shard count for the sharded workload "
        "(default: cpu count)",
    )
    parser.add_argument(
        "--mega",
        action="store_true",
        help=f"also run the {MEGA_STREAMS}-stream sharded "
        "demonstration (slow: streams the whole workload twice, "
        "kernel and scalar, for the at-scale digest gate)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_stream.json",
        help="where to write the JSON record (default: "
        "BENCH_stream.json)",
    )
    args = parser.parse_args(argv)
    shards = (
        max(1, os.cpu_count() or 1)
        if args.shards is None
        else args.shards
    )
    if shards < 1:
        print(
            f"error: shards must be >= 1, got {shards}",
            file=sys.stderr,
        )
        return 2
    parity = bench_parity(args.seed, args.scenario)
    fleet, profile = bench_fleet(args.quick, args.seed, args.scenario)
    sharded = bench_sharded_fleet(
        args.quick,
        args.seed,
        args.scenario,
        shards,
        fleet["sustained_streams"],
    )
    results = [parity, fleet, sharded]
    mega = None
    if args.mega:
        mega = bench_mega_fleet(args.seed, args.scenario)
        results.append(mega)
    record = {
        "benchmark": "streaming guard parity + fleet throughput",
        "quick": args.quick,
        "seed": args.seed,
        "scenario": args.scenario,
        "gate_sustained_streams": SUSTAINED_STREAMS_GATE,
        "gate_sustained_per_core": SUSTAINED_PER_CORE_GATE,
        "stages": profile.as_rows(),
        "results": results,
    }
    write_bench_record(args.output, record)
    table = ResultTable(
        title="streaming guard: fleet throughput",
        columns=[
            "workload",
            "streams",
            "audio s",
            "wall s",
            "sustained",
            "mean lat ms",
        ],
    )
    table.add_row(
        fleet["workload"],
        fleet["n_streams"],
        fleet["audio_seconds"],
        fleet["wall_seconds"],
        fleet["sustained_streams"],
        fleet["mean_latency_ms"],
    )
    table.add_row(
        sharded["workload"],
        sharded["n_streams"],
        sharded["audio_seconds"],
        sharded["wall_seconds"],
        sharded["sustained_streams"],
        "",
    )
    if mega is not None:
        table.add_row(
            mega["workload"],
            mega["n_streams"],
            mega["audio_seconds"],
            mega["wall_seconds"],
            mega["sustained_streams"],
            "",
        )
    print(table.render())
    print(profile.render(), file=sys.stderr)
    print(f"wrote {args.output}", file=sys.stderr)
    if not parity["identical"]:
        print(
            "FAIL: chunked streaming diverged from the offline guard",
            file=sys.stderr,
        )
        return 1
    if not fleet["digest_identical"]:
        print(
            "FAIL: structure-of-arrays kernel digest diverged from "
            "the scalar per-stream loop",
            file=sys.stderr,
        )
        return 1
    if not sharded["digest_identical"]:
        print(
            "FAIL: sharded fleet digest diverged from the unsharded "
            "simulator",
            file=sys.stderr,
        )
        return 1
    if mega is not None and not mega["digest_identical"]:
        print(
            f"FAIL: {MEGA_STREAMS}-stream kernel digest diverged "
            "from the scalar per-stream loop",
            file=sys.stderr,
        )
        return 1
    if fleet["sustained_streams"] < SUSTAINED_STREAMS_GATE:
        print(
            f"FAIL: sustains {fleet['sustained_streams']} concurrent "
            f"streams, gate is {SUSTAINED_STREAMS_GATE}",
            file=sys.stderr,
        )
        return 1
    per_core_gate = SUSTAINED_PER_CORE_GATE * sharded["cores"]
    if sharded["sustained_streams"] < per_core_gate:
        print(
            f"FAIL: sharded fleet sustains "
            f"{sharded['sustained_streams']} streams on "
            f"{sharded['cores']} cores, gate is {per_core_gate} "
            f"({SUSTAINED_PER_CORE_GATE}/core)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: parity bitwise, {fleet['sustained_streams']} concurrent "
        f"streams sustained single-process "
        f"({fleet['kernel_speedup']:.1f}x over the scalar loop's "
        f"{fleet['scalar_sustained_streams']}, digests bitwise; mean "
        f"latency {fleet['mean_latency_ms']:.0f} ms); sharded "
        f"digest bitwise, {sharded['sustained_streams']} streams over "
        f"{sharded['shards']} shards "
        f"({sharded['streams_per_core_per_second']:.0f}/core/s, "
        f"{sharded['scaling_efficiency']:.2f}x efficiency)",
        file=sys.stderr,
    )
    if mega is not None:
        print(
            f"ok: mega fleet held {mega['n_streams']} concurrent "
            f"streams over {mega['shards']} shards "
            f"({mega['sustained_streams']} sustained, "
            f"{mega['kernel_speedup']:.1f}x over scalar, digest "
            "bitwise at scale)",
            file=sys.stderr,
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
