"""Benchmark the streaming guard: parity gate + fleet throughput.

Two measurements, recorded to ``BENCH_stream.json`` for CI's
run-over-run trajectory:

* **Parity** — the chunked streaming guard must agree with the
  offline guard *bitwise* on an attack and a genuine probe at several
  chunk sizes (the S1/test-suite guarantee, re-checked here so the
  throughput number can never be quoted from a diverged
  implementation).
* **Fleet throughput** — a mostly-idle device fleet (ambient with one
  command per stream, the duty cycle real assistants see) streamed
  through per-device guards on a thread pool. The headline figure is
  ``sustained_streams``: stream-seconds of audio processed per wall
  second, i.e. how many live 1x device streams this machine holds.
  The gate requires >= 100.
* **Sharded fleet** — the same duty cycle scaled to every core
  through :class:`~repro.stream.shard.ShardedFleetSimulator`: one
  process shard per core, 120 streams per shard. Gates: the sharded
  digest is bitwise identical to the unsharded simulator, and the
  fleet sustains >= 100 streams *per core* (near-linear scaling);
  ``streams_per_core_per_second`` is the recorded trajectory figure.

Every record embeds :func:`repro.sim.bench.machine_metadata` (cpu
count, python, git sha), so trajectory points are comparable across
runners.

Usage::

    python benchmarks/bench_stream.py --quick    # CI smoke (same gates)
    python benchmarks/bench_stream.py            # paper numbers
    python benchmarks/bench_stream.py --shards 4
    python benchmarks/bench_stream.py --output /tmp/bench.json

Exits non-zero if parity fails, a digest diverges, or a
sustained-stream gate misses.
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

from repro.experiments.s1_streaming import (
    chunked_parity_probes,
    train_detector,
)
from repro.sim.bench import machine_metadata
from repro.sim.results import ResultTable
from repro.stream.fleet import FleetConfig, FleetSimulator
from repro.stream.shard import ShardedFleetSimulator

#: The acceptance gate: live 1x device streams the machine must hold.
SUSTAINED_STREAMS_GATE = 100

#: The sharded gate: live 1x streams each core must hold — sustaining
#: this at every core count is the near-linear-scaling claim.
SUSTAINED_PER_CORE_GATE = 100

#: Streams per shard in the sharded workload (the PR 5 single-core
#: fleet size, so per-shard load stays constant as shards scale).
STREAMS_PER_SHARD = 120


def bench_parity(seed: int, scenario: str) -> dict:
    """Chunked-vs-offline bitwise agreement on both probe classes.

    Walks the same probe loop as the S1 experiment
    (:func:`repro.experiments.s1_streaming.chunked_parity_probes`),
    so this gate can never drift from the table it re-checks.
    """
    detector = train_detector(scenario, seed, n_trials=2)
    cases = [
        {"probe": kind, "chunk_ms": chunk_ms, "bitwise": bitwise}
        for kind, chunk_ms, _, bitwise in chunked_parity_probes(
            scenario, seed, (10, 50, 250), detector
        )
    ]
    return {
        "workload": f"chunked vs offline parity ({scenario})",
        "cases": cases,
        "identical": all(case["bitwise"] for case in cases),
    }


def bench_fleet(quick: bool, seed: int, scenario: str) -> dict:
    """Sustained concurrent streams on a mostly-idle fleet."""
    detector = train_detector(scenario, seed, n_trials=2)
    config = FleetConfig(
        scenario=scenario,
        n_streams=STREAMS_PER_SHARD,
        utterances_per_stream=1,
        attack_fraction=0.5,
        # Mostly-idle duty cycle: one command inside seconds of
        # ambient, the load profile the paper's always-on deployment
        # actually faces. Quick mode shortens the idle stretches
        # (less audio, same per-utterance work — a *harder* gate).
        lead_in_s=0.5,
        gap_s=6.0 if quick else 10.0,
        chunk_s=0.05,
        seed=seed + 3,
        workers=max(1, (os.cpu_count() or 2)),
    )
    report = FleetSimulator(detector, config).run()
    latencies = report.latencies_s()
    sustained = int(report.realtime_factor)
    return {
        "workload": (
            f"fleet: {config.n_streams} streams x "
            f"{config.utterances_per_stream} utterance, "
            f"{config.gap_s:.0f} s idle gap ({scenario})"
        ),
        "n_streams": config.n_streams,
        "workers": config.workers,
        "audio_seconds": report.audio_seconds,
        "wall_seconds": report.wall_seconds,
        "prepare_seconds": report.prepare_seconds,
        "realtime_factor": report.realtime_factor,
        "sustained_streams": sustained,
        "utterances": report.n_utterances,
        "vetoed": report.n_vetoed,
        "executed": report.n_executed,
        "rejected": report.n_rejected,
        "mean_latency_ms": (
            1000.0 * float(np.mean(latencies)) if latencies else 0.0
        ),
        "p95_latency_ms": (
            1000.0 * float(np.percentile(latencies, 95))
            if latencies
            else 0.0
        ),
    }


def bench_sharded_fleet(
    quick: bool,
    seed: int,
    scenario: str,
    shards: int,
    single_sustained: int,
) -> dict:
    """Per-core scaling of the process-sharded fleet.

    Two claims, two measurements:

    * **Digest parity** — a small fleet run through both the
      unsharded :class:`FleetSimulator` and the sharded driver at the
      benched shard count must produce bitwise-identical digests
      (cheap: 8 streams), so the throughput number below can never be
      quoted from a diverged implementation.
    * **Throughput** — ``STREAMS_PER_SHARD`` streams *per shard* (the
      PR 5 single-core fleet per core), gated at
      ``SUSTAINED_PER_CORE_GATE`` sustained streams per core.
      ``scaling_efficiency`` compares per-core sustained streams
      against the single-process fleet's figure (1.0 = perfectly
      linear).
    """
    detector = train_detector(scenario, seed, n_trials=2)
    cores = min(shards, os.cpu_count() or 1)

    parity_config = FleetConfig(
        scenario=scenario,
        n_streams=8,
        attack_fraction=0.5,
        seed=seed + 4,
        workers=2,
        shards=shards,
    )
    reference = FleetSimulator(detector, parity_config).run()
    sharded = ShardedFleetSimulator(detector, parity_config).run()
    digest_identical = reference.digest() == sharded.digest()

    config = FleetConfig(
        scenario=scenario,
        n_streams=STREAMS_PER_SHARD * shards,
        utterances_per_stream=1,
        attack_fraction=0.5,
        lead_in_s=0.5,
        gap_s=6.0 if quick else 10.0,
        chunk_s=0.05,
        seed=seed + 3,
        workers=max(1, (os.cpu_count() or 2) // shards),
        shards=shards,
    )
    report = ShardedFleetSimulator(detector, config).run()
    sustained = int(report.realtime_factor)
    per_core = report.realtime_factor / cores
    return {
        "workload": (
            f"sharded fleet: {config.n_streams} streams over "
            f"{shards} shards, {config.gap_s:.0f} s idle gap "
            f"({scenario})"
        ),
        "n_streams": config.n_streams,
        "shards": shards,
        "cores": cores,
        "workers_per_shard": config.workers,
        "audio_seconds": report.audio_seconds,
        "wall_seconds": report.wall_seconds,
        "shard_wall_seconds": list(report.shard_wall_seconds),
        "prepare_seconds": report.prepare_seconds,
        "sustained_streams": sustained,
        "streams_per_core_per_second": per_core,
        "scaling_efficiency": (
            per_core / single_sustained if single_sustained else 0.0
        ),
        "digest_identical": digest_identical,
        "digest": report.digest_hex(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="streaming guard: parity gate + fleet throughput"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shorter idle stretches (CI smoke); same parity and "
        f">= {SUSTAINED_STREAMS_GATE}-stream gates as full mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="free_field")
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="process-shard count for the sharded workload "
        "(default: cpu count)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_stream.json",
        help="where to write the JSON record (default: "
        "BENCH_stream.json)",
    )
    args = parser.parse_args(argv)
    shards = (
        max(1, os.cpu_count() or 1)
        if args.shards is None
        else args.shards
    )
    if shards < 1:
        print(
            f"error: shards must be >= 1, got {shards}",
            file=sys.stderr,
        )
        return 2
    parity = bench_parity(args.seed, args.scenario)
    fleet = bench_fleet(args.quick, args.seed, args.scenario)
    sharded = bench_sharded_fleet(
        args.quick,
        args.seed,
        args.scenario,
        shards,
        fleet["sustained_streams"],
    )
    record = {
        "benchmark": "streaming guard parity + fleet throughput",
        "quick": args.quick,
        "seed": args.seed,
        "scenario": args.scenario,
        "gate_sustained_streams": SUSTAINED_STREAMS_GATE,
        "gate_sustained_per_core": SUSTAINED_PER_CORE_GATE,
        "machine": machine_metadata(),
        "results": [parity, fleet, sharded],
    }
    with open(args.output, "w") as handle:
        json.dump(record, handle, indent=2)
        handle.write("\n")
    table = ResultTable(
        title="streaming guard: fleet throughput",
        columns=[
            "workload",
            "streams",
            "audio s",
            "wall s",
            "sustained",
            "mean lat ms",
        ],
    )
    table.add_row(
        fleet["workload"],
        fleet["n_streams"],
        fleet["audio_seconds"],
        fleet["wall_seconds"],
        fleet["sustained_streams"],
        fleet["mean_latency_ms"],
    )
    table.add_row(
        sharded["workload"],
        sharded["n_streams"],
        sharded["audio_seconds"],
        sharded["wall_seconds"],
        sharded["sustained_streams"],
        "",
    )
    print(table.render())
    print(f"wrote {args.output}", file=sys.stderr)
    if not parity["identical"]:
        print(
            "FAIL: chunked streaming diverged from the offline guard",
            file=sys.stderr,
        )
        return 1
    if not sharded["digest_identical"]:
        print(
            "FAIL: sharded fleet digest diverged from the unsharded "
            "simulator",
            file=sys.stderr,
        )
        return 1
    if fleet["sustained_streams"] < SUSTAINED_STREAMS_GATE:
        print(
            f"FAIL: sustains {fleet['sustained_streams']} concurrent "
            f"streams, gate is {SUSTAINED_STREAMS_GATE}",
            file=sys.stderr,
        )
        return 1
    per_core_gate = SUSTAINED_PER_CORE_GATE * sharded["cores"]
    if sharded["sustained_streams"] < per_core_gate:
        print(
            f"FAIL: sharded fleet sustains "
            f"{sharded['sustained_streams']} streams on "
            f"{sharded['cores']} cores, gate is {per_core_gate} "
            f"({SUSTAINED_PER_CORE_GATE}/core)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: parity bitwise, {fleet['sustained_streams']} concurrent "
        f"streams sustained single-process "
        f"(mean latency {fleet['mean_latency_ms']:.0f} ms); sharded "
        f"digest bitwise, {sharded['sustained_streams']} streams over "
        f"{sharded['shards']} shards "
        f"({sharded['streams_per_core_per_second']:.0f}/core/s, "
        f"{sharded['scaling_efficiency']:.2f}x efficiency)",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
