"""Benchmark F2 — single-speaker audible leakage vs drive power.

Regenerates the paper artefact via ``repro.experiments.f2_speaker_leakage``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f2_speaker_leakage.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f2_speaker_leakage


def test_f2_speaker_leakage(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f2_speaker_leakage.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
