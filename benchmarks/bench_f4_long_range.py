"""Benchmark F4 — attack range vs number of speakers (headline figure).

Regenerates the paper artefact via ``repro.experiments.f4_long_range``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f4_long_range.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f4_long_range


def test_f4_long_range(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f4_long_range.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
