"""Benchmark the observability overhead: tracing must be near-free.

The ``repro.obs`` contract has two halves and this bench gates both:

* **Bitwise inertness** — running the fleet workload under an active
  tracer and metrics registry must produce the byte-identical digest
  to the untraced run. Tracing reads clocks and appends spans; it
  never touches an experiment RNG stream or a sample buffer.
* **Overhead tripwire** — the traced pass may cost at most
  ``MAX_OVERHEAD`` extra wall clock over the untraced pass on the
  same workload (min-of-``REPEATS`` on both sides, interleaved so
  thermal drift hits both). The hot stream kernel amortises its span
  records over whole stream-groups, so the expected overhead is well
  under the gate.

The record lands in ``BENCH_obs.json`` with the shared machine
stamp, so CI tracks the overhead trajectory run over run::

    python benchmarks/bench_obs.py --quick    # CI smoke
    python benchmarks/bench_obs.py            # full workload
    python benchmarks/bench_obs.py --output /tmp/bench.json

Exits non-zero if the digests differ or the overhead gate trips.
"""

from __future__ import annotations

import argparse
import gc
import sys
import time

from repro.experiments.s1_streaming import train_detector
from repro.obs.metrics import MetricsRegistry
from repro.obs.metrics import activate as activate_metrics
from repro.obs.trace import Tracer, activate
from repro.sim.bench import write_bench_record
from repro.sim.results import ResultTable
from repro.stream.fleet import FleetConfig, FleetSimulator

#: Maximum fractional wall-clock cost of enabling tracing + metrics
#: on the fleet workload (the ISSUE's <3% tripwire).
MAX_OVERHEAD = 0.03

#: Passes per side; fastest wall clock wins (min-of-N: interference
#: only ever adds time). Traced and untraced passes interleave so a
#: thermal or noisy-neighbor drift cannot land on one side only.
REPEATS = 5


def _config(quick: bool, seed: int, scenario: str) -> FleetConfig:
    """The bench_stream duty cycle, sized so span records are a
    measurable fraction only if they are actually expensive."""
    return FleetConfig(
        scenario=scenario,
        n_streams=32 if quick else 120,
        utterances_per_stream=1,
        attack_fraction=0.5,
        lead_in_s=0.5,
        gap_s=3.0 if quick else 10.0,
        chunk_s=0.05,
        seed=seed + 3,
        workers=2,
    )


def bench_overhead(quick: bool, seed: int, scenario: str) -> dict:
    detector = train_detector(scenario, seed, n_trials=2)
    config = _config(quick, seed, scenario)
    walls = {False: None, True: None}
    digests = {False: None, True: None}
    span_count = 0
    for _ in range(REPEATS):
        for traced in (False, True):
            gc.collect()
            tracer = Tracer()
            registry = MetricsRegistry()
            started = time.perf_counter()
            if traced:
                with activate(tracer), activate_metrics(registry):
                    report = FleetSimulator(detector, config).run()
            else:
                report = FleetSimulator(detector, config).run()
            wall = time.perf_counter() - started
            digest = report.digest()
            if digests[traced] is None:
                digests[traced] = digest
            elif digests[traced] != digest:
                raise AssertionError(
                    "fleet digest drifted between passes"
                )
            if walls[traced] is None or wall < walls[traced]:
                walls[traced] = wall
            if traced:
                span_count = len(tracer.spans)
    overhead = walls[True] / walls[False] - 1.0
    return {
        "workload": (
            f"fleet: {config.n_streams} streams x "
            f"{config.utterances_per_stream} utterance, "
            f"{config.gap_s:.0f} s idle gap ({scenario})"
        ),
        "n_streams": config.n_streams,
        "repeats": REPEATS,
        "untraced_wall_s": walls[False],
        "traced_wall_s": walls[True],
        "overhead": overhead,
        "max_overhead": MAX_OVERHEAD,
        "span_count": span_count,
        "digest_identical": digests[False] == digests[True],
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="observability: digest inertness + overhead gate"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smaller fleet (CI smoke); same inertness and "
        f"<= {MAX_OVERHEAD:.0%} overhead gates as full mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="free_field")
    parser.add_argument(
        "--output",
        default="BENCH_obs.json",
        help="where to write the JSON record (default: BENCH_obs.json)",
    )
    args = parser.parse_args(argv)
    result = bench_overhead(args.quick, args.seed, args.scenario)
    write_bench_record(
        args.output,
        {
            "benchmark": "observability overhead + digest inertness",
            "quick": args.quick,
            "seed": args.seed,
            "scenario": args.scenario,
            "results": [result],
        },
    )
    table = ResultTable(
        title="observability: traced vs untraced fleet",
        columns=[
            "workload", "untraced s", "traced s", "overhead", "spans",
        ],
    )
    table.add_row(
        result["workload"],
        result["untraced_wall_s"],
        result["traced_wall_s"],
        f"{result['overhead']:+.1%}",
        result["span_count"],
    )
    print(table.render())
    print(f"wrote {args.output}", file=sys.stderr)
    if not result["digest_identical"]:
        print(
            "FAIL: tracing changed the fleet digest", file=sys.stderr
        )
        return 1
    if result["overhead"] > result["max_overhead"]:
        print(
            f"FAIL: tracing overhead {result['overhead']:+.1%}, gate "
            f"is {result['max_overhead']:.0%}",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: digest bitwise under tracing, {result['span_count']} "
        f"spans at {result['overhead']:+.1%} overhead",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
