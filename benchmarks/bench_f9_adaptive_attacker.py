"""Benchmark F9 — adaptive attacker vs defense.

Regenerates the paper artefact via ``repro.experiments.f9_adaptive_attacker``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f9_adaptive_attacker.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f9_adaptive_attacker


def test_f9_adaptive_attacker(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f9_adaptive_attacker.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
