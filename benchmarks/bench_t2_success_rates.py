"""Benchmark T2 — end-to-end success rates.

Regenerates the paper artefact via ``repro.experiments.t2_success_rates``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_t2_success_rates.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import t2_success_rates


def test_t2_success_rates(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: t2_success_rates.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
