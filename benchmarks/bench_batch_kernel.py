"""Benchmark the vectorized batch trial kernel against the scalar path.

Measures ``ExperimentEngine.run_trial_groups`` with ``batch=True``
versus ``batch=False`` on the trial-heavy workloads the suite actually
runs — T2-class success-rate cells (32-speaker split array and single
full drive) and an F8-class defense feature batch — verifying on the
way that both modes produce identical outcomes.

Run as a script::

    python benchmarks/bench_batch_kernel.py --quick   # CI smoke
    python benchmarks/bench_batch_kernel.py           # paper numbers

Since the declarative trial pipeline (``repro.sim.pipeline``) landed,
the one-transmission-per-group precompute serves *both* modes — the
scalar walk no longer re-propagates the emission per trial — so the
two modes are expected to sit near parity rather than the historical
8x; what remains of the batch win is the stacked per-trial DSP.
EXPERIMENTS.md records the trajectory. Exits non-zero if the batched
path becomes pathologically slower than the scalar walk or if the two
modes disagree.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.defense.features import feature_matrix, feature_vector
from repro.experiments._emissions import (
    ATTACKER_POSITION,
    array_split,
    single_full,
)
from repro.sim.engine import EmissionSpec, ExperimentEngine, TrialGroup
from repro.sim.results import ResultTable
from repro.sim.scenario import Scenario, VictimDevice


def _trial_workloads(quick: bool, seed: int) -> list[tuple[str, TrialGroup]]:
    n_trials = 10 if quick else 50
    phone = VictimDevice.phone(seed=seed + 1)
    scenario = Scenario(
        command="ok_google",
        attacker_position=ATTACKER_POSITION,
        victim_position=ATTACKER_POSITION.translated(3.0, 0.0, 0.0),
    )
    return [
        (
            f"T2 split array ({n_trials} trials)",
            TrialGroup(
                scenario,
                phone,
                EmissionSpec(array_split, ("ok_google", seed, 32)),
                n_trials,
            ),
        ),
        (
            f"T2 single full drive ({n_trials} trials)",
            TrialGroup(
                scenario,
                phone,
                EmissionSpec(single_full, ("ok_google", seed)),
                n_trials,
            ),
        ),
    ]


def _outcomes_equal(a, b) -> bool:
    return len(a) == len(b) and all(
        x.success == y.success
        and x.recognized_command == y.recognized_command
        and x.distance == y.distance
        for x, y in zip(a, b)
    )


def bench_trial_groups(
    table: ResultTable, quick: bool, seed: int
) -> bool:
    """Scalar-vs-batch timing per trial group; returns agreement."""
    agree = True
    for name, group in _trial_workloads(quick, seed):
        group.resolve_sources()  # warm the emission cache for both modes
        timings = {}
        outcomes = {}
        for mode in (False, True):
            engine = ExperimentEngine(jobs=1, batch=mode)
            started = time.perf_counter()
            outcomes[mode] = engine.run_trial_groups(
                [group], np.random.default_rng(seed), keep_recordings=False
            )[0]
            timings[mode] = time.perf_counter() - started
        agree &= _outcomes_equal(outcomes[False], outcomes[True])
        table.add_row(
            name,
            timings[False],
            timings[True],
            timings[False] / timings[True],
        )
    return agree


def bench_feature_batch(table: ResultTable, quick: bool, seed: int) -> bool:
    """F8-class defense feature extraction, scalar loop vs batched."""
    n_recordings = 8 if quick else 40
    rng = np.random.default_rng(seed)
    group = _trial_workloads(quick=True, seed=seed)[1][1]
    engine = ExperimentEngine(jobs=1)
    outcomes = engine.run_trial_groups(
        [TrialGroup(group.scenario, group.device, group.emission, n_recordings)],
        rng,
    )[0]
    recordings = [outcome.recording for outcome in outcomes]
    started = time.perf_counter()
    scalar = np.stack([feature_vector(r) for r in recordings])
    scalar_s = time.perf_counter() - started
    started = time.perf_counter()
    batched = feature_matrix(recordings)
    batch_s = time.perf_counter() - started
    table.add_row(
        f"F8 feature extraction ({n_recordings} recordings)",
        scalar_s,
        batch_s,
        scalar_s / batch_s,
    )
    return bool(np.array_equal(scalar, batched))


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="scalar vs batched trial kernel throughput"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small workloads (CI smoke); same identical-output and "
        "0.7x-tripwire gates as full mode",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    table = ResultTable(
        title="batch kernel: scalar vs vectorized (single worker)",
        columns=["workload", "scalar s", "batch s", "speedup"],
    )
    agree = bench_trial_groups(table, args.quick, args.seed)
    agree &= bench_feature_batch(table, args.quick, args.seed)
    print(table.render())
    if not agree:
        print("FAIL: batch and scalar outcomes disagree", file=sys.stderr)
        return 1
    speedups = table.column("speedup")
    # Gate on the trial-heavy split-array workload only. Both modes
    # now share the per-group transmission precompute (the pipeline's
    # trial-invariant step), so near-parity is the expectation; the
    # gate only trips if the batched path becomes pathologically
    # slower, with margin for noisy shared CI runners.
    gated = speedups[0]
    if gated < 0.7:
        print(
            f"FAIL: batch much slower than scalar on the trial-heavy "
            f"workload ({gated:.2f}x)",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: trial-heavy speedup {gated:.2f}x "
        f"(all: {', '.join(f'{s:.2f}x' for s in speedups)})",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
