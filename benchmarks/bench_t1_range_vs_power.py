"""Benchmark T1 — attack range vs speaker input power.

Regenerates the paper artefact via ``repro.experiments.t1_range_vs_power``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_t1_range_vs_power.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import t1_range_vs_power


def test_t1_range_vs_power(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: t1_range_vs_power.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
