"""Benchmark T3 — defense accuracy across generalisation splits.

Regenerates the paper artefact via ``repro.experiments.t3_defense_accuracy``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_t3_defense_accuracy.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import t3_defense_accuracy


def test_t3_defense_accuracy(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: t3_defense_accuracy.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
