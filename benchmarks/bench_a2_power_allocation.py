"""Benchmark A2 — ablation: drive allocation strategy.

Regenerates the paper artefact via ``repro.experiments.a2_power_allocation``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_a2_power_allocation.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import a2_power_allocation


def test_a2_power_allocation(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: a2_power_allocation.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
