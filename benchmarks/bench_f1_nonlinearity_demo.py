"""Benchmark F1 — the microphone-nonlinearity demodulation demo.

Regenerates the paper artefact via ``repro.experiments.f1_nonlinearity_demo``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f1_nonlinearity_demo.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f1_nonlinearity_demo


def test_f1_nonlinearity_demo(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f1_nonlinearity_demo.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
