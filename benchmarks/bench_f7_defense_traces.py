"""Benchmark F7 — defense trace feature separation.

Regenerates the paper artefact via ``repro.experiments.f7_defense_traces``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f7_defense_traces.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f7_defense_traces


def test_f7_defense_traces(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f7_defense_traces.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
