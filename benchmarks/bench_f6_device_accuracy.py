"""Benchmark F6 — per-device success vs distance.

Regenerates the paper artefact via ``repro.experiments.f6_device_accuracy``;
the rendered table is printed so the run log doubles as the
reproduction record (see EXPERIMENTS.md). The benchmark timing itself
measures the full experiment pipeline once (pedantic single round —
these are system experiments, not microbenchmarks).

Run ``REPRO_FULL=1 pytest benchmarks/bench_f6_device_accuracy.py --benchmark-only``
for the full-resolution (non-quick) variant used in EXPERIMENTS.md.
"""

import os

from repro.experiments import f6_device_accuracy


def test_f6_device_accuracy(benchmark):
    quick = os.environ.get("REPRO_FULL", "") != "1"
    table = benchmark.pedantic(
        lambda: f6_device_accuracy.run(quick=quick, seed=0), rounds=1, iterations=1
    )
    print()
    print(table.render())
