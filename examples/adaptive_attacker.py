"""An adaptive attacker tries to evade the defense.

The defense keys on the quadratic demodulation residue. The attacker's
only lever over that residue (without losing the attack entirely) is
the modulation depth: shallower modulation leaves a fainter trace —
and a fainter *command*. This example sweeps the depth and shows both
sides of the trade.

Run: ``python examples/adaptive_attacker.py``   (takes ~1 minute)
"""

import numpy as np

from repro import (
    DatasetConfig,
    Position,
    SingleSpeakerAttacker,
    build_dataset,
    horn_tweeter,
    synthesize_command,
)
from repro.attack import AttackPipelineConfig
from repro.defense import InaudibleVoiceDetector
from repro.sim import Scenario, ScenarioRunner, VictimDevice

rng = np.random.default_rng(11)
ORIGIN = Position(0.0, 2.0, 1.0)

# The deployed detector: trained on ordinary full-depth attacks.
train = build_dataset(
    DatasetConfig(
        commands=("ok_google", "alexa"),
        distances_m=(1.0, 2.0),
        n_trials=5,
        attacker_kind="single_full",
        seed=5,
    )
)
detector = InaudibleVoiceDetector().fit(train)

device = VictimDevice.phone(seed=2)
scenario = Scenario(
    command="ok_google",
    attacker_position=ORIGIN,
    victim_position=Position(2.0, 2.0, 1.0),
)
runner = ScenarioRunner(scenario, device)
voice = synthesize_command("ok_google", rng)

print("mod depth   attack success   detected   mean detector score")
for depth in (1.0, 0.5, 0.25, 0.15):
    attacker = SingleSpeakerAttacker(
        horn_tweeter(), ORIGIN, AttackPipelineConfig(modulation_depth=depth)
    )
    emission = attacker.emit(voice, drive_level=1.0)
    outcomes = runner.run_trials(list(emission.sources), 5, rng)
    success = sum(o.success for o in outcomes) / len(outcomes)
    verdicts = [detector.classify(o.recording) for o in outcomes]
    detected = sum(v.is_attack for v in verdicts) / len(verdicts)
    score = float(np.mean([v.score for v in verdicts]))
    print(
        f"{depth:9.2f}   {success:14.2f}   {detected:8.2f}   {score:10.3f}"
    )

print(
    "\nShallower modulation starves the attack before it hides the "
    "trace: the defense wins the trade."
)
