"""Why the attacker cannot simply turn up the volume.

Sweeps a single speaker's drive power and shows the two curves whose
collision motivates the whole long-range design:

* the demodulated command level at the victim grows with power — good
  for the attacker;
* the rig's own audible leakage grows *faster* (quadratically), and
  crosses the human hearing threshold long before the attack reaches
  useful range.

Also shows the escape hatch: a narrow spectral chunk of the same
signal, played at FULL drive, stays inaudible because its
self-intermodulation falls below the audible floor.

Run: ``python examples/inaudibility_analysis.py``
"""

import numpy as np

from repro import horn_tweeter, synthesize_command, ultrasonic_piezo_element
from repro.attack import AttackPipeline, SpectralSplitter, leakage_report

rng = np.random.default_rng(3)
voice = synthesize_command("ok_google", rng)
drive = AttackPipeline().generate(voice)
speaker = horn_tweeter()

print("single wideband speaker playing the full AM attack waveform")
print("power (W)   leakage dBA   audibility margin dB")
for fraction in (0.01, 0.05, 0.2, 0.5, 1.0):
    power = fraction * speaker.config.max_electrical_power_w
    level = speaker.drive_level_for_power(power)
    report = leakage_report(speaker, drive, level, bystander_distance_m=0.5)
    flag = "AUDIBLE" if report.is_audible else "silent"
    print(
        f"{power:8.2f}   {report.a_weighted_level_dba:10.1f}   "
        f"{report.margin_db:+10.1f}   {flag}"
    )

print("\nsame total spectrum, split into narrow chunks (piezo element, FULL drive)")
print("chunks   chunk bandwidth Hz   worst chunk margin dB")
element = ultrasonic_piezo_element()
for n_chunks in (2, 8, 32):
    plan = SpectralSplitter(n_chunks=n_chunks).split(voice)
    worst = max(
        leakage_report(element, chunk.drive, 1.0, 0.5).margin_db
        for chunk in plan.chunks
    )
    print(f"{n_chunks:6d}   {plan.chunk_bandwidth_hz():18.0f}   {worst:+.1f}")

print(
    "\nNarrower chunks push the nonlinear residue below both the "
    "hearing threshold and the element's radiation floor — the "
    "physics that lets an array run at full power in silence."
)
