"""Quickstart: inject an inaudible voice command end to end.

Walks the whole chain in ~30 lines of API:

1. synthesise a voice command,
2. turn it into an ultrasonic attack waveform,
3. radiate it from a speaker, propagate it 2 m through air,
4. record it with a phone-style microphone (whose nonlinearity
   demodulates the hidden command),
5. let the keyword recogniser decide what the phone heard.

Run: ``python examples/quickstart.py``
"""

import numpy as np

from repro import (
    AcousticChannel,
    KeywordRecognizer,
    Position,
    SingleSpeakerAttacker,
    android_phone_microphone,
    horn_tweeter,
    synthesize_command,
)
from repro.dsp import welch_psd

rng = np.random.default_rng(0)

# 1. The command the attacker wants to inject.
voice = synthesize_command("ok_google", rng)
print(f"voice command: {voice.duration:.2f} s at {voice.sample_rate:.0f} Hz")

# 2-3. Build and radiate the attack (full drive: the loud baseline rig).
attacker = SingleSpeakerAttacker(horn_tweeter(), Position(0.0, 2.0, 1.0))
emission = attacker.emit(voice, drive_level=1.0)
drive_psd = welch_psd(emission.drive, segment_length=16384)
print(
    "attack waveform peak frequency: "
    f"{drive_psd.peak_frequency() / 1000:.1f} kHz (ultrasonic)"
)

# 4. Propagate 2 m and record with the victim's microphone.
channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
victim_position = Position(2.0, 2.0, 1.0)
arrived = channel.receive(list(emission.sources), victim_position, rng)
microphone = android_phone_microphone()
recording = microphone.record(arrived, rng)
rec_psd = welch_psd(recording)
print(
    "recording: voice-band power "
    f"{10 * np.log10(rec_psd.band_power(300, 3000) + 1e-30):.1f} dB "
    "— the microphone demodulated the ultrasound"
)

# 5. What did the phone hear?
recognizer = KeywordRecognizer()
enroll_rng = np.random.default_rng(1234)
for name in ("ok_google", "alexa", "take_a_picture"):
    recognizer.enroll_multi_condition(
        name, synthesize_command(name, enroll_rng), enroll_rng
    )
result = recognizer.recognize(recording)
print(
    f"recognised: {result.command!r} "
    f"(accepted={result.accepted}, distance={result.distance:.2f})"
)
assert result.accepted and result.command == "ok_google"
print("attack succeeded: the phone heard a command no human could hear.")
