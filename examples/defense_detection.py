"""Train and evaluate the inaudible-command defense.

Builds a physically simulated dataset (genuine playbacks vs attacked
recordings), trains the trace-based detector, and reports ROC/accuracy
— including on a command the detector never saw in training.

Run: ``python examples/defense_detection.py``   (takes ~1 minute)
"""

import numpy as np

from repro import DatasetConfig, InaudibleVoiceDetector, build_dataset
from repro.defense import roc_curve

# 1. Physically simulate labelled recordings.
config = DatasetConfig(
    commands=("ok_google", "alexa", "add_milk"),
    distances_m=(1.0, 2.0, 3.0),
    n_trials=5,
    attacker_kind="single_full",
    seed=42,
)
dataset = build_dataset(config)
print(f"dataset: {dataset.n_samples} recordings "
      f"({int(dataset.labels.sum())} attacked)")

# 2. Train/test split and training.
rng = np.random.default_rng(0)
train, test = dataset.split(0.6, rng)
detector = InaudibleVoiceDetector().fit(train)

# 3. Headline numbers.
scores = detector.scores_for(test)
roc = roc_curve(test.labels, scores)
confusion = detector.evaluate(test)
print(f"test AUC        : {roc.auc():.3f}")
print(f"test accuracy   : {confusion.accuracy:.3f}")
print(f"detection rate  : {confusion.true_positive_rate:.3f}")
print(f"false alarms    : {confusion.false_positive_rate:.3f}")

# 4. Generalisation: hold out a command entirely.
train_known = dataset.filter(lambda m: m["command"] != "add_milk")
test_unknown = dataset.filter(lambda m: m["command"] == "add_milk")
held_out = InaudibleVoiceDetector().fit(train_known)
confusion_unknown = held_out.evaluate(test_unknown)
print(
    "held-out command ('add milk to my shopping list') accuracy: "
    f"{confusion_unknown.accuracy:.3f}"
)

# 5. What the detector actually looks at.
print("\nper-feature class means (genuine vs attacked):")
for index, name in enumerate(dataset.feature_names):
    genuine = dataset.features[dataset.labels == 0, index].mean()
    attacked = dataset.features[dataset.labels == 1, index].mean()
    print(f"  {name:28s} {genuine:8.2f}  vs {attacked:8.2f}")
