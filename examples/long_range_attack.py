"""The long-range attack: spectrum splitting across a speaker array.

Demonstrates the paper's headline result. A single speaker capped at
the maximum *inaudible* drive fails beyond arm's length, while an
array — every element of which is individually inaudible to a
bystander half a metre away — injects the command from several metres.

Run: ``python examples/long_range_attack.py``   (takes ~1 minute)
"""

import numpy as np

from repro import (
    AcousticChannel,
    LongRangeAttacker,
    Position,
    SingleSpeakerAttacker,
    grid_array,
    horn_tweeter,
    synthesize_command,
    ultrasonic_piezo_element,
)
from repro.psychoacoustics import evaluate_audibility
from repro.sim import Scenario, ScenarioRunner, VictimDevice

rng = np.random.default_rng(7)
COMMAND = "ok_google"
ORIGIN = Position(0.0, 2.0, 1.0)

voice = synthesize_command(COMMAND, rng)
device = VictimDevice.phone(seed=1)
scenario = Scenario(
    command=COMMAND,
    attacker_position=ORIGIN,
    victim_position=Position(1.0, 2.0, 1.0),
)

# --- Baseline: one wideband speaker, capped to stay inaudible --------
single = SingleSpeakerAttacker(horn_tweeter(), ORIGIN)
capped = single.emit_inaudibly(voice)
print(
    f"single speaker: max inaudible drive = {capped.drive_level:.3f} "
    f"of full power"
)

# --- The paper's rig: a panel of piezo elements ----------------------
for n_elements in (8, 24, 61):
    array = grid_array(n_elements, ORIGIN, ultrasonic_piezo_element)
    attacker = LongRangeAttacker(array)
    emission = attacker.emit(voice)
    worst_margin = max(
        evaluate_audibility(source.pressure_at_1m).margin_db
        for source in emission.sources
    )
    print(
        f"\narray of {n_elements:2d} elements "
        f"({attacker.n_carrier} carrier + "
        f"{attacker.splitter.n_chunks} chunks), worst per-element "
        f"audibility margin {worst_margin:+.1f} dB (negative = silent):"
    )
    for distance in (2.0, 4.0, 6.0, 8.0):
        runner = ScenarioRunner(scenario.at_distance(distance), device)
        outcomes = runner.run_trials(list(emission.sources), 3, rng)
        successes = sum(o.success for o in outcomes)
        print(f"  {distance:4.1f} m: {successes}/3 injections recognised")

print(
    "\nThe capped single speaker dies at ~0.5 m; the 61-element panel "
    "reaches past the paper's 25 ft."
)
