"""The defended end state: an assistant that cannot be commanded silently.

Installs the trained detector in front of the recogniser
(`GuardedVoiceAssistant`) and replays both a genuine spoken command and
a working inaudible injection against it. The genuine command executes;
the injection — which *does* fool the recogniser — is vetoed.

Run: ``python examples/protected_assistant.py``   (takes ~30 s)
"""

import numpy as np

from repro import (
    AcousticChannel,
    DatasetConfig,
    InaudibleVoiceDetector,
    KeywordRecognizer,
    Position,
    SingleSpeakerAttacker,
    android_phone_microphone,
    build_dataset,
    horn_tweeter,
    synthesize_command,
)
from repro.attack import AudiblePlaybackAttacker
from repro.defense import GuardedVoiceAssistant

rng = np.random.default_rng(23)
ORIGIN = Position(0.0, 2.0, 1.0)
MIC_AT = Position(2.0, 2.0, 1.0)

# Assemble the protected device: enrolled recogniser + trained guard.
recognizer = KeywordRecognizer()
enroll_rng = np.random.default_rng(1234)
for name in ("ok_google", "alexa", "take_a_picture"):
    recognizer.enroll_multi_condition(
        name, synthesize_command(name, enroll_rng), enroll_rng
    )
detector = InaudibleVoiceDetector().fit(
    build_dataset(
        DatasetConfig(
            commands=("ok_google", "alexa"),
            distances_m=(1.0, 2.0),
            n_trials=4,
            attacker_kind="single_full",
            seed=8,
        )
    )
)
assistant = GuardedVoiceAssistant(recognizer, detector)

microphone = android_phone_microphone()
channel = AcousticChannel(room=None, ambient_noise_spl=40.0)
voice = synthesize_command("ok_google", rng)

# A person says the command out loud.
spoken = AudiblePlaybackAttacker(ORIGIN, speech_spl_at_1m=63.0).emit(voice)
recording = microphone.record(
    channel.receive(list(spoken.sources), MIC_AT, rng), rng
)
outcome = assistant.process(recording)
print(
    f"spoken command : recognised={outcome.recognition.command!r} "
    f"vetoed={outcome.vetoed} executed={outcome.executed_command!r}"
)

# An attacker injects the same command inaudibly.
injected = SingleSpeakerAttacker(horn_tweeter(), ORIGIN).emit(voice, 1.0)
recording = microphone.record(
    channel.receive(list(injected.sources), MIC_AT, rng), rng
)
outcome = assistant.process(recording)
print(
    f"injected command: recognised={outcome.recognition.command!r} "
    f"vetoed={outcome.vetoed} executed={outcome.executed_command!r} "
    f"(detector score {outcome.detection.score:.3f})"
)

assert outcome.vetoed and outcome.executed_command is None
print("\nThe recogniser was fooled; the guard was not.")
